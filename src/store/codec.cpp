#include "store/codec.h"

#include <array>
#include <bit>
#include <cstring>

#include "common/simd.h"
#include "sigcomp/byte_pattern.h"
#include "sigcomp/sig_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SIGCOMP_X86_CODEC 1
#endif

namespace sigcomp::store
{

namespace
{

inline std::uint32_t
zigzag(std::uint32_t prev, std::uint32_t v)
{
    const std::int32_t d =
        static_cast<std::int32_t>(v - prev); // wrap-around delta
    return (static_cast<std::uint32_t>(d) << 1) ^
           static_cast<std::uint32_t>(d >> 31);
}

inline std::uint32_t
unzigzag(std::uint32_t prev, std::uint32_t z)
{
    const std::uint32_t d = (z >> 1) ^ (~(z & 1) + 1);
    return prev + d;
}

/** LEB128 length of @p z: ceil(significant bits / 7), min 1. */
inline unsigned
varintLen(std::uint32_t z)
{
    return (static_cast<unsigned>(std::bit_width(z | 1u)) + 6u) / 7u;
}

inline void
putVarint(std::vector<std::uint8_t> &out, std::uint32_t z)
{
    while (z >= 0x80u) {
        out.push_back(static_cast<std::uint8_t>(z) | 0x80u);
        z >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(z));
}

/** @return false on overrun or an over-long (>5 byte) varint. */
inline bool
getVarint(const std::uint8_t *bytes, std::size_t len, std::size_t &pos,
          std::uint32_t &z)
{
    z = 0;
    for (unsigned shift = 0; shift < 35; shift += 7) {
        if (pos >= len)
            return false;
        const std::uint8_t b = bytes[pos++];
        z |= static_cast<std::uint32_t>(b & 0x7Fu) << shift;
        if ((b & 0x80u) == 0)
            return true;
    }
    return false;
}

/** Per-block scratch for the Ext3 masks (classify once, use twice). */
using MaskBlock = std::array<sig::ByteMask, codecBlockValues>;

/** Significant-byte count per 4-bit pattern (0 = illegal: bit 0 of a
 * legal Ext3 pattern is always set). */
constexpr std::uint8_t kNeed[16] = {0, 1, 0, 2, 0, 2, 0, 3,
                                    0, 2, 0, 3, 0, 3, 0, 4};

/** Exact SigPack payload size for a block: tag plane + packed bytes. */
std::size_t
sigPackSize(const MaskBlock &masks, std::size_t k)
{
    std::size_t bytes = (k + 1) / 2;
    for (std::size_t i = 0; i < k; ++i)
        bytes += kNeed[masks[i]];
    return bytes;
}

// ---- SigPack shuffle tables ----------------------------------------
//
// One 4-byte pattern per tag, stored as a little-endian u32 so a
// whole per-value lane of a PSHUFB control register is one table
// load plus an offset add:
//
//  - kCompressShuf picks a value's significant bytes in low-to-high
//    order (encode: word bytes -> packed stream bytes);
//  - kStoredShuf scatters packed stream bytes back to their word
//    positions (decode), 0x80 in extension positions;
//  - kGovShuf places, in each extension position, the index of the
//    nearest stored byte below it (the byte whose sign governs the
//    fill), 0x80 in stored positions.
//
// 0x80 lanes stay >= 0x80 after any group offset add (offsets are at
// most 12), and PSHUFB writes zero for any control byte with the
// high bit set, which is exactly the "not this lane" behaviour both
// directions need.

struct ShufTriple
{
    std::uint32_t compress;
    std::uint32_t stored;
    std::uint32_t gov;
};

constexpr std::array<ShufTriple, 16>
buildShuf()
{
    std::array<ShufTriple, 16> t{};
    for (unsigned m = 0; m < 16; ++m) {
        std::uint32_t comp = 0, stored = 0, gov = 0;
        unsigned slot = 0;
        for (unsigned j = 0; j < 4; ++j) {
            const unsigned below =
                static_cast<unsigned>(std::popcount(m & ((1u << j) - 1)));
            if (m & (1u << j)) {
                comp |= j << (8 * slot);
                ++slot;
                stored |= below << (8 * j);
                gov |= 0x80u << (8 * j);
            } else {
                // below >= 1 for legal tags (bit 0 always set); the
                // m==0 row is never used (kNeed[0] == 0).
                stored |= 0x80u << (8 * j);
                gov |= (below == 0 ? 0x80u : below - 1) << (8 * j);
            }
        }
        for (unsigned j = slot; j < 4; ++j)
            comp |= 0x80u << (8 * j);
        t[m] = {comp, stored, gov};
    }
    return t;
}

constexpr std::array<ShufTriple, 16> kShuf = buildShuf();

/**
 * Branchless reconstruction constants per pattern: the packed
 * little-endian bytes spread into their word positions as
 *   v = (s & k0) | ((s & k8) << 8) | ((s & k16) << 16)
 * and the extension bytes fill in closed form — every pattern has at
 * most two runs of extension bytes, each governed by the sign of the
 * stored byte directly below the run, so
 *   v |= ((v >> sh1) & 1) * mul1;  v |= ((v >> sh2) & 1) * mul2;
 * smears each governing sign across its run in one multiply.
 */
struct Spread
{
    Word k0, k8, k16;
    unsigned sh1;
    Word mul1;
    unsigned sh2;
    Word mul2;
};

constexpr Spread kSpread[16] = {
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0, 0, 7, 0xFFFFFF00u, 0, 0},              // eees
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x0000FFFFu, 0, 0, 15, 0xFFFF0000u, 0, 0},             // eess
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0x0000FF00u, 0, 7, 0x0000FF00u, 23,
     0xFF000000u},                                          // eses
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x00FFFFFFu, 0, 0, 23, 0xFF000000u, 0, 0},             // esss
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0, 0x0000FF00u, 7, 0x00FFFF00u, 0, 0},    // sees
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x0000FFFFu, 0x00FF0000u, 0, 15, 0x00FF0000u, 0, 0},   // sess
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0x00FFFF00u, 0, 7, 0x0000FF00u, 0, 0},    // sses
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0xFFFFFFFFu, 0, 0, 0, 0, 0, 0},                        // ssss
};

/** Rebuild one word from its packed bytes @p s under pattern @p m. */
inline Word
sigReconstruct(Word s, unsigned m)
{
    const Spread &sp = kSpread[m];
    Word v = (s & sp.k0) | ((s & sp.k8) << 8) | ((s & sp.k16) << 16);
    v |= ((v >> sp.sh1) & 1u) * sp.mul1;
    v |= ((v >> sp.sh2) & 1u) * sp.mul2;
    return v;
}

/** Scalar SigPack payload writer (tail + non-x86 fallback). */
void
sigPackEncodeScalar(const std::uint32_t *vals, const sig::ByteMask *masks,
                    std::size_t k, std::uint8_t *out)
{
    for (std::size_t i = 0; i < k; ++i) {
        const sig::ByteMask mask = masks[i];
        for (unsigned b = 0; b < 4; ++b)
            if (mask & (1u << b))
                *out++ = static_cast<std::uint8_t>(vals[i] >> (8 * b));
    }
}

#if SIGCOMP_X86_CODEC

/**
 * PSHUFB compressor: four values per iteration. The per-value
 * compress patterns (plus the 4i source-lane bias) are written
 * head-to-tail into a little scratch control block — each u32 write
 * may spill past its value's slot, but the next value's write lands
 * exactly at the slot end and overwrites the spill, and bytes past
 * the group total are never copied out. One shuffle then packs all
 * four values' significant bytes in stream order.
 */
__attribute__((target("ssse3"))) std::size_t
sigPackEncodeSsse3(const std::uint32_t *vals, const sig::ByteMask *masks,
                   std::size_t k, std::uint8_t *out)
{
    const std::uint8_t *const start = out;
    std::size_t i = 0;
    for (; i + 4 <= k; i += 4) {
        const unsigned m0 = masks[i], m1 = masks[i + 1];
        const unsigned m2 = masks[i + 2], m3 = masks[i + 3];
        const unsigned n0 = kNeed[m0], n1 = kNeed[m1];
        const unsigned n2 = kNeed[m2], n3 = kNeed[m3];

        std::uint8_t ctl[20];
        std::uint32_t c;
        c = kShuf[m0].compress;
        std::memcpy(ctl, &c, 4);
        c = kShuf[m1].compress + 0x04040404u;
        std::memcpy(ctl + n0, &c, 4);
        c = kShuf[m2].compress + 0x08080808u;
        std::memcpy(ctl + n0 + n1, &c, 4);
        c = kShuf[m3].compress + 0x0C0C0C0Cu;
        std::memcpy(ctl + n0 + n1 + n2, &c, 4);

        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(vals + i));
        const __m128i ctlv =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(ctl));
        // Caller guarantees >= 16 bytes of slack past the payload.
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                         _mm_shuffle_epi8(v, ctlv));
        out += n0 + n1 + n2 + n3;
    }
    sigPackEncodeScalar(vals + i, masks + i, k - i, out);
    for (; i < k; ++i)
        out += kNeed[masks[i]];
    return static_cast<std::size_t>(out - start);
}

/**
 * PSHUFB decoder: four values per iteration while a full 16-byte
 * lookahead fits in the payload. Stored bytes scatter to their word
 * positions through one shuffle; a second shuffle replicates each
 * extension run's governing byte into the run, where a signed
 * compare against zero turns it into the 0x00/0xFF fill.
 */
__attribute__((target("ssse3"))) bool
sigPackDecodeSsse3(const std::uint8_t *bytes, std::size_t plane_k,
                   const std::uint8_t *data, std::size_t payload,
                   std::size_t k, std::uint32_t *dst, std::size_t &i_out,
                   std::size_t &off_out)
{
    const __m128i zero = _mm_setzero_si128();
    std::size_t i = 0;
    std::size_t off = 0;
    (void)plane_k;
    while (i + 4 <= k && off + 16 <= payload) {
        const std::uint8_t t0 = bytes[i >> 1];
        const std::uint8_t t1 = bytes[(i >> 1) + 1];
        const unsigned m0 = t0 & 0x0Fu, m1 = t0 >> 4;
        const unsigned m2 = t1 & 0x0Fu, m3 = t1 >> 4;
        const unsigned n0 = kNeed[m0], n1 = kNeed[m1];
        const unsigned n2 = kNeed[m2], n3 = kNeed[m3];
        if (n0 == 0 || n1 == 0 || n2 == 0 || n3 == 0)
            return false;
        const unsigned o1 = n0, o2 = n0 + n1, o3 = n0 + n1 + n2;

        const __m128i ctl_s = _mm_setr_epi32(
            static_cast<int>(kShuf[m0].stored),
            static_cast<int>(kShuf[m1].stored + o1 * 0x01010101u),
            static_cast<int>(kShuf[m2].stored + o2 * 0x01010101u),
            static_cast<int>(kShuf[m3].stored + o3 * 0x01010101u));
        const __m128i ctl_g = _mm_setr_epi32(
            static_cast<int>(kShuf[m0].gov),
            static_cast<int>(kShuf[m1].gov + o1 * 0x01010101u),
            static_cast<int>(kShuf[m2].gov + o2 * 0x01010101u),
            static_cast<int>(kShuf[m3].gov + o3 * 0x01010101u));

        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + off));
        const __m128i stored = _mm_shuffle_epi8(d, ctl_s);
        const __m128i gov = _mm_shuffle_epi8(d, ctl_g);
        // 0xFF exactly in the extension bytes whose governing stored
        // byte is negative (gov is zero in stored positions).
        const __m128i fill = _mm_cmpgt_epi8(zero, gov);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_or_si128(stored, fill));
        off += o3 + n3;
        i += 4;
    }
    i_out = i;
    off_out = off;
    return true;
}

#endif // SIGCOMP_X86_CODEC

void
sigPackEncode(const std::uint32_t *vals, const MaskBlock &masks,
              std::size_t k, std::vector<std::uint8_t> &out)
{
    // Tag plane first: two 4-bit Ext3 patterns per byte, value i in
    // the low nibble for even i.
    const std::size_t plane = (k + 1) / 2;
    std::size_t payload = 0;
    for (std::size_t i = 0; i < k; ++i)
        payload += kNeed[masks[i]];

    const std::size_t base = out.size();
    // 16 bytes of slack lets the vector path store whole registers.
    out.resize(base + plane + payload + 16);
    std::uint8_t *p = out.data() + base;
    for (std::size_t i = 0; i + 2 <= k; i += 2)
        p[i >> 1] = static_cast<std::uint8_t>(masks[i] |
                                              (masks[i + 1] << 4));
    if (k & 1)
        p[k >> 1] = masks[k - 1];

    std::uint8_t *payload_out = p + plane;
#if SIGCOMP_X86_CODEC
    if (simd::activeSimdLevel() == simd::SimdLevel::Ssse3 ||
        simd::activeSimdLevel() == simd::SimdLevel::Avx2) {
        sigPackEncodeSsse3(vals, masks.data(), k, payload_out);
    } else {
        sigPackEncodeScalar(vals, masks.data(), k, payload_out);
    }
#else
    sigPackEncodeScalar(vals, masks.data(), k, payload_out);
#endif
    out.resize(base + plane + payload);
}

/**
 * SigPack decode. This is the store tier's hot loop (every operand
 * and result word of every replayed trace): warm-store load has to
 * beat functional recapture, so on SSSE3+ hosts whole groups of four
 * values decode through the shuffle tables above, and the rest of
 * the block (or the whole block at scalar dispatch) runs the
 * branchless two-per-tag-byte pair loop. An unpredictable branch per
 * value (the obvious switch on the pattern) costs more than either.
 * The last few values, where a lookahead would overrun the payload,
 * fall back to a byte-at-a-time walk.
 */
bool
sigPackDecode(const std::uint8_t *bytes, std::size_t len, std::size_t k,
              std::uint32_t *dst)
{
    const std::size_t plane = (k + 1) / 2;
    if (len < plane)
        return false;
    const std::uint8_t *data = bytes + plane;
    const std::size_t payload = len - plane;

    std::size_t off = 0;
    std::size_t i = 0;
#if SIGCOMP_X86_CODEC
    if (simd::activeSimdLevel() == simd::SimdLevel::Ssse3 ||
        simd::activeSimdLevel() == simd::SimdLevel::Avx2) {
        if (!sigPackDecodeSsse3(bytes, plane, data, payload, k, dst, i,
                                off))
            return false;
    }
#endif
    while (i + 2 <= k && off + 8 <= payload) {
        const std::uint8_t tags = bytes[i >> 1];
        const unsigned m0 = tags & 0x0Fu;
        const unsigned m1 = tags >> 4;
        const unsigned n0 = kNeed[m0];
        const unsigned n1 = kNeed[m1];
        if (n0 == 0 || n1 == 0)
            return false;
        dst[i] = sigReconstruct(getU32(data + off), m0);
        dst[i + 1] = sigReconstruct(getU32(data + off + n0), m1);
        off += n0 + n1;
        i += 2;
    }
    // Safe byte-at-a-time tail.
    for (; i < k; ++i) {
        const std::uint8_t tags = bytes[i >> 1];
        const unsigned mask = (i & 1) ? (tags >> 4) : (tags & 0x0Fu);
        const unsigned need = kNeed[mask];
        if (need == 0 || off + need > payload)
            return false;
        Word s = 0;
        for (unsigned b = 0; b < need; ++b)
            s |= static_cast<Word>(data[off + b]) << (8 * b);
        dst[i] = sigReconstruct(s, mask);
        off += need;
    }
    return off == payload;
}

} // namespace

void
encodeColumn32(const std::uint32_t *vals, std::size_t n,
               std::vector<std::uint8_t> &out, const std::uint8_t *tags)
{
    std::uint32_t prev = 0;
    MaskBlock masks;
    for (std::size_t base = 0; base < n; base += codecBlockValues) {
        const std::size_t k = std::min(codecBlockValues, n - base);
        const std::uint32_t *block = vals + base;
        if (tags != nullptr) {
            std::memcpy(masks.data(), tags + base, k);
        } else {
            sig::classifyExt3Block(block, k, masks.data());
        }

        const std::size_t raw_size = 4 * k;
        const std::size_t sig_size = sigPackSize(masks, k);
        std::size_t delta_size = 0;
        {
            std::uint32_t p = prev;
            for (std::size_t i = 0; i < k; ++i) {
                delta_size += varintLen(zigzag(p, block[i]));
                p = block[i];
            }
        }

        BlockMode mode = BlockMode::Raw;
        std::size_t best = raw_size;
        if (sig_size < best) {
            mode = BlockMode::SigPack;
            best = sig_size;
        }
        if (delta_size < best) {
            mode = BlockMode::DeltaVarint;
            best = delta_size;
        }

        out.push_back(static_cast<std::uint8_t>(mode));
        putU32(out, static_cast<std::uint32_t>(best));
        switch (mode) {
        case BlockMode::Raw:
            for (std::size_t i = 0; i < k; ++i)
                putU32(out, block[i]);
            break;
        case BlockMode::SigPack:
            sigPackEncode(block, masks, k, out);
            break;
        case BlockMode::DeltaVarint: {
            std::uint32_t p = prev;
            for (std::size_t i = 0; i < k; ++i) {
                putVarint(out, zigzag(p, block[i]));
                p = block[i];
            }
            break;
        }
        }
        prev = block[k - 1];
    }

    // Zero-length columns encode to zero bytes; nothing to do.
}

bool
decodeColumn32(const std::uint8_t *bytes, std::size_t len, std::size_t n,
               std::vector<std::uint32_t> &out)
{
    out.resize(n);
    std::uint32_t *dst = out.data();
    std::uint32_t prev = 0;
    std::size_t produced = 0;
    std::size_t pos = 0;
    while (produced < n) {
        const std::size_t k = std::min(codecBlockValues, n - produced);
        if (pos + 5 > len)
            return false;
        const std::uint8_t mode = bytes[pos];
        const std::size_t payload = getU32(bytes + pos + 1);
        pos += 5;
        if (payload > len - pos)
            return false;
        const std::uint8_t *p = bytes + pos;

        switch (static_cast<BlockMode>(mode)) {
        case BlockMode::Raw:
            if (payload != 4 * k)
                return false;
            for (std::size_t i = 0; i < k; ++i)
                dst[produced + i] = getU32(p + 4 * i);
            break;
        case BlockMode::SigPack:
            if (!sigPackDecode(p, payload, k, dst + produced))
                return false;
            break;
        case BlockMode::DeltaVarint: {
            std::size_t vpos = 0;
            std::size_t i = 0;
            // Fast path: local deltas are almost always one byte, so
            // whole groups of eight continuation-free varint bytes
            // decode without any per-byte branching (checked with
            // one mask over the group).
            while (i + 8 <= k && vpos + 8 <= payload) {
                std::uint64_t g;
                std::memcpy(&g, p + vpos, 8);
                if ((g & 0x8080808080808080ull) != 0)
                    break;
                for (unsigned j = 0; j < 8; ++j) {
                    prev = unzigzag(
                        prev,
                        static_cast<std::uint32_t>((g >> (8 * j)) &
                                                   0x7Fu));
                    dst[produced + i + j] = prev;
                }
                vpos += 8;
                i += 8;
            }
            for (; i < k; ++i) {
                std::uint32_t z;
                // One-byte fast path for stragglers.
                if (vpos < payload && p[vpos] < 0x80u) {
                    z = p[vpos++];
                } else if (!getVarint(p, payload, vpos, z)) {
                    return false;
                }
                prev = unzigzag(prev, z);
                dst[produced + i] = prev;
            }
            if (vpos != payload)
                return false;
            break;
        }
        default:
            return false;
        }
        pos += payload;
        produced += k;
        prev = dst[produced - 1];
    }
    return pos == len;
}

void
encodeColumn64Raw(const std::uint64_t *vals, std::size_t n,
                  std::vector<std::uint8_t> &out)
{
    out.reserve(out.size() + 8 * n);
    for (std::size_t i = 0; i < n; ++i)
        putU64(out, vals[i]);
}

bool
decodeColumn64Raw(const std::uint8_t *bytes, std::size_t len,
                  std::size_t n, std::vector<std::uint64_t> &out)
{
    if (len != 8 * n)
        return false;
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(getU64(bytes + 8 * i));
    return true;
}

} // namespace sigcomp::store
