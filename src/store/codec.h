/**
 * @file
 * Significance-aware column codecs for the persistent trace store.
 *
 * Each 32-bit trace column is encoded in independent blocks of up to
 * codecBlockValues values; per block the encoder picks the smallest
 * of three representations:
 *
 *  - SigPack: the store dogfoods the paper's own idea. Every value is
 *    classified with sig::classifyExt3() and only its significant
 *    bytes are stored, preceded by a packed plane of 4-bit byte
 *    patterns (two tags per byte). Operand/result columns are
 *    dominated by small and sign-extended values (paper Table 1), so
 *    this usually stores 1-2 bytes per 4-byte word.
 *  - DeltaVarint: zigzag LEB128 of successive deltas. Decode-index
 *    and memory-address streams are locally sequential (the +1 fall
 *    through, the stride walk), so deltas are tiny.
 *  - Raw: 4 bytes per value, little-endian. The guaranteed fallback:
 *    a block never expands beyond raw + the 5-byte block header, so
 *    the worst case is bounded.
 *
 * Block framing: u8 mode, u32 payload length, payload. The delta
 * base carries across blocks (first block deltas against 0).
 *
 * Decoders are fail-soft: every read is bounds-checked and any
 * malformed stream returns false instead of crashing or returning
 * short data — the store treats that as segment corruption and falls
 * back to recapture.
 *
 * SigPack encode and decode are SIMD-dispatched (common/simd.h): on
 * SSSE3+ hosts whole groups of four values move through PSHUFB
 * shuffle tables (tag nibble -> byte-scatter/gather pattern), the
 * encoder classifies blocks with the batch kernels (or takes the
 * capture-time sidecar tags), and runs of single-byte varint deltas
 * decode eight at a time. Every path is bit-identical to the scalar
 * reference at every level — encoded streams are byte-for-byte equal
 * regardless of dispatch — pinned by test_simd.cpp.
 */

#ifndef SIGCOMP_STORE_CODEC_H_
#define SIGCOMP_STORE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sigcomp::store
{

/** Per-block representation chosen by the encoder. */
enum class BlockMode : std::uint8_t
{
    Raw = 0,
    SigPack = 1,
    DeltaVarint = 2,
};

/** Values per codec block (the spill/decode streaming granularity). */
constexpr std::size_t codecBlockValues = 4096;

// ---- little-endian scalar helpers (shared with the segment files) --

inline void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t
getU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t
getU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

/**
 * Encode @p n 32-bit values, appending the block stream to @p out.
 * Works for any input; worst case is raw size plus one 5-byte header
 * per block.
 *
 * @p tags, when non-null, is the column's precomputed per-value Ext3
 * significance tags (the capture-time sidecar): the SigPack sizing
 * and encoding passes then skip classification entirely. Must equal
 * sig::classifyExt3() of each value — the encoded bytes are
 * identical either way, tags only remove the classify cost.
 */
void encodeColumn32(const std::uint32_t *vals, std::size_t n,
                    std::vector<std::uint8_t> &out,
                    const std::uint8_t *tags = nullptr);

/**
 * Decode exactly @p n values from the @p len-byte block stream.
 * @return false (leaving @p out unspecified) on any malformed input:
 * unknown mode, payload overrun, or a stream that does not decode to
 * exactly @p n values.
 */
bool decodeColumn32(const std::uint8_t *bytes, std::size_t len,
                    std::size_t n, std::vector<std::uint32_t> &out);

/** Encode @p n 64-bit words raw (bit-packed columns are already dense). */
void encodeColumn64Raw(const std::uint64_t *vals, std::size_t n,
                       std::vector<std::uint8_t> &out);

/** Decode @p n raw 64-bit words; false when @p len != 8n. */
bool decodeColumn64Raw(const std::uint8_t *bytes, std::size_t len,
                       std::size_t n, std::vector<std::uint64_t> &out);

} // namespace sigcomp::store

#endif // SIGCOMP_STORE_CODEC_H_
