/**
 * @file
 * Persistent significance-compressed trace store: the disk tier
 * behind analysis::TraceCache.
 *
 * PR 2 made functional simulation a once-per-process cost; the store
 * makes it a once-per-*machine* cost. Each workload's TraceBuffer
 * serializes into one segment file under the store directory,
 * columns encoded with the significance-aware codecs of
 * store/codec.h, so a cold process loads and replays instead of
 * recapturing.
 *
 * Segment file format (versions 2/3, all integers little-endian) —
 * see README "Persistent trace store" for the full layout:
 *
 *   header (64 bytes, CRC-guarded):
 *     magic 'SCTR', format version, instruction count, memory-op
 *     count, capture limit, program fingerprint (CRC over text,
 *     data segment and entry point), flags (truncated), stop
 *     reason/exit code, lastNextPc, column count, header CRC;
 *   column directory (one 32-byte entry per column + CRC):
 *     column id, raw (decoded) bytes, encoded bytes, payload CRC;
 *   column payloads, in directory order;
 *   annex section (version 3 only, CRC-guarded directory): the
 *     trace's derived SharedQuanta records keyed by quanta key, so
 *     warm loads skip computeQuanta (see formatVersion below).
 *
 * Six columns are stored (decode index, result, taken bits, memory
 * address/data, significance sidecar): the operand columns are
 * rebuilt at load time by replaying the result stream through an
 * architectural register file, which is cheaper than decoding them
 * and shrinks segments by another ~40%. Version 2 packs the taken
 * column as one bit per *control* instruction (re-scattered along
 * the decode-index stream at load) and persists the capture-time
 * Ext3 tag planes of the result/memData columns as the sigTags
 * sidecar annex, so warm loads rebuild TraceBuffer's significance
 * sidecars without re-classifying stored values.
 *
 * Integrity and versioning rules:
 *  - load() is *fail-soft*: any mismatch — bad magic, unacceptable
 *    format version, CRC failure (header, directory or payload),
 *    truncated file, program fingerprint or capture-limit mismatch,
 *    malformed codec stream — returns nullptr with a reason string;
 *    callers recapture. A segment can never crash the process or
 *    yield a trace that differs from live capture.
 *  - version-1 segments (no sidecar annex, raw taken plane) still
 *    load, with the sidecars rebuilt by the batch kernels; load()
 *    reports them via its `legacy` out-parameter so the cache's
 *    write-through re-saves them in the current format (upgrade in
 *    place). Anything else fails soft as above.
 *  - save() writes to a temp file and renames into place, so readers
 *    racing a writer only ever observe complete segments.
 *  - reads decode straight out of a read-only mmap of the segment
 *    file; there is no read-then-decode copy of the payload bytes.
 *
 * Thread-safety: TraceStore is stateless between calls (all state is
 * the filesystem); concurrent load/save/verify from any number of
 * threads or processes is safe.
 */

#ifndef SIGCOMP_STORE_TRACE_STORE_H_
#define SIGCOMP_STORE_TRACE_STORE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "cpu/trace_buffer.h"
#include "isa/program.h"

namespace sigcomp::store
{

/**
 * Newest segment format load() accepts. Version 2 added the
 * capture-time significance sidecar column and the control-only
 * taken bit plane; version 3 appends an **annex section** after the
 * column payloads carrying the trace's derived SharedQuanta records
 * ("quanta:<key>" annexes, see pipeline/pipeline.h), so a warm-store
 * process skips computeQuanta as well as functional capture.
 *
 * The version written reflects the content: a segment with no
 * annexes to persist is written as version 2 (byte-identical to the
 * previous format), one with annexes as version 3 — so
 * annex-oblivious consumers of existing stores see no change, and
 * Session::run upgrades segments in place the first time it derives
 * quanta for them (TraceCache::persistAnnexes).
 *
 * Version-1 segments (no sidecar column, raw taken plane) still
 * load — the sidecar is rebuilt with the batch kernels — and are
 * transparently re-saved in the current format by the cache's
 * write-through upgrade (see TraceCache). Anything else fails soft.
 */
// sigcomp-lint: format-layout-begin
// Any change to the marked format-layout regions (here and in
// trace_store.cpp) must bump formatVersion and refresh the pin:
// `tools/sigcomp_lint --update-format-pin` (checked in CI).
constexpr std::uint32_t formatVersion = 3;

/** Format written for segments with no annex section. */
constexpr std::uint32_t formatVersionNoAnnex = 2;

/** Oldest format load() still accepts (sidecar-less segments). */
constexpr std::uint32_t formatVersionLegacy = 1;
// sigcomp-lint: format-layout-end

/** Per-column size accounting for stats/compression-ratio reports. */
struct ColumnStat
{
    std::string name;
    std::uint64_t rawBytes = 0;
    std::uint64_t encodedBytes = 0;

    double
    ratio() const
    {
        return encodedBytes
                   ? static_cast<double>(rawBytes) /
                         static_cast<double>(encodedBytes)
                   : 0.0;
    }
};

/** Decoded segment metadata (header + directory, no payloads). */
struct SegmentInfo
{
    std::string workload;
    std::string path;
    std::uint64_t instructions = 0;
    std::uint64_t fileBytes = 0;
    std::uint64_t captureLimit = 0;
    bool truncated = false;
    std::vector<ColumnStat> columns;
    /**
     * Persisted derived-record annexes (version >= 3), one entry per
     * record, named by annex key. Excluded from rawBytes()/
     * encodedBytes(): those report the trace columns proper.
     */
    std::vector<ColumnStat> annexes;

    std::uint64_t rawBytes() const;
    std::uint64_t encodedBytes() const;
};

/**
 * One directory of trace segments. Cheap value-ish handle: holds only
 * the path and mode.
 */
class TraceStore
{
  public:
    /**
     * Open (and unless @p read_only, create) the store directory.
     * Fatal only when a writable store's directory cannot be created;
     * a missing read-only store simply contains nothing.
     */
    explicit TraceStore(std::string dir, bool read_only = false);

    const std::string &dir() const { return dir_; }
    bool readOnly() const { return readOnly_; }

    /**
     * Load @p workload's trace, rebuilt against @p program (the store
     * persists only the dynamic columns; static program state is
     * rebuilt by the workload registry and checked against the
     * fingerprint). @p capture_limit must match the segment's capture
     * parameters. Fail-soft: nullptr on any mismatch or corruption,
     * with the reason in @p why when non-null.
     *
     * Segments are decoded straight out of a read-only mapping of
     * the file (no read-then-decode copy); @p legacy, when non-null,
     * is set when the segment was an accepted older format — the
     * caller should re-save the returned buffer to upgrade it in
     * place (TraceCache's write-through does).
     */
    std::shared_ptr<cpu::TraceBuffer>
    load(const std::string &workload, const isa::Program &program,
         DWord capture_limit, std::string *why = nullptr,
         bool *legacy = nullptr) const;

    /**
     * Persist @p trace as @p workload's segment (atomic
     * replace-on-rename). @return false (reason in @p why) on I/O
     * failure or when the store is read-only; never throws — a
     * failed save only costs a later recapture.
     */
    bool save(const std::string &workload, const cpu::TraceBuffer &trace,
              DWord capture_limit, std::string *why = nullptr) const;

    /** True when a segment file for @p workload exists. */
    bool contains(const std::string &workload) const;

    /** Delete @p workload's segment. @return true when removed. */
    bool remove(const std::string &workload) const;

    /** Workload names of all segments present, sorted. */
    std::vector<std::string> list() const;

    /**
     * Read a segment's header and column directory (CRC-checked, no
     * payload decode). @return false on any corruption.
     */
    bool info(const std::string &workload, SegmentInfo &out,
              std::string *why = nullptr) const;

    /**
     * Full integrity check: header, directory and payload CRCs plus
     * codec decode; with @p program also the fingerprint.
     */
    bool verify(const std::string &workload,
                const isa::Program *program = nullptr,
                std::string *why = nullptr) const;

    /**
     * Annex keys stored in @p workload's segment (empty for missing,
     * damaged, or pre-annex segments). Cheap: header + directories
     * only, no payload decode. TraceCache::persistAnnexes uses this
     * to decide whether a re-save would add anything.
     */
    std::vector<std::string> annexKeys(const std::string &workload) const;

    /**
     * The "quanta:" annex keys of @p trace that save() would
     * actually persist — canonical records only, capped at the
     * format's per-segment annex limit. persistAnnexes compares
     * THESE against annexKeys(), so an ineligible record can never
     * cause endless no-op re-saves.
     */
    static std::vector<std::string>
    persistableAnnexKeys(const cpu::TraceBuffer &trace);

    /** Segment path for @p workload (exists or not). */
    std::string segmentPath(const std::string &workload) const;

    /**
     * Fingerprint binding a segment to the exact program it was
     * captured from: CRC over the text words, data segment and entry
     * point.
     */
    static std::uint32_t programFingerprint(const isa::Program &program);

  private:
    std::string dir_;
    bool readOnly_;
};

/** Whole-store aggregation for ratio/stats reporting. */
struct StoreStats
{
    std::size_t segments = 0;
    std::uint64_t instructions = 0;
    std::uint64_t fileBytes = 0;
    /** Per-column totals summed across all readable segments. */
    std::vector<ColumnStat> columns;

    std::uint64_t rawBytes() const;
    std::uint64_t encodedBytes() const;

    double
    totalRatio() const
    {
        return encodedBytes()
                   ? static_cast<double>(rawBytes()) /
                         static_cast<double>(encodedBytes())
                   : 0.0;
    }
};

/**
 * Sum header/directory metadata over every readable segment in
 * @p store (unreadable segments are skipped — they are recapture
 * fodder, not an error here).
 */
StoreStats aggregateStats(const TraceStore &store);

/**
 * Emit @p columns as JSON objects
 * `{"name", "raw_bytes", "encoded_bytes", "ratio"}`, one per line
 * prefixed with @p indent, comma-separated — the shared body of the
 * `sigcomp_store stats --json` and BENCH_suite.json reports.
 */
void writeColumnsJson(std::FILE *f,
                      const std::vector<ColumnStat> &columns,
                      const char *indent);

} // namespace sigcomp::store

#endif // SIGCOMP_STORE_TRACE_STORE_H_
