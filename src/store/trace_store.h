/**
 * @file
 * Persistent significance-compressed trace store: the disk tier
 * behind analysis::TraceCache.
 *
 * PR 2 made functional simulation a once-per-process cost; the store
 * makes it a once-per-*machine* cost. Each workload's TraceBuffer
 * serializes into one segment file under the store directory,
 * columns encoded with the significance-aware codecs of
 * store/codec.h, so a cold process loads and replays instead of
 * recapturing.
 *
 * Segment file format (versions 2/3, all integers little-endian) —
 * see README "Persistent trace store" for the full layout:
 *
 *   header (64 bytes, CRC-guarded):
 *     magic 'SCTR', format version, instruction count, memory-op
 *     count, capture limit, program fingerprint (CRC over text,
 *     data segment and entry point), flags (truncated), stop
 *     reason/exit code, lastNextPc, column count, header CRC;
 *   column directory (one 32-byte entry per column + CRC):
 *     column id, raw (decoded) bytes, encoded bytes, payload CRC;
 *   column payloads, in directory order;
 *   annex section (version 3 only, CRC-guarded directory): the
 *     trace's derived SharedQuanta records keyed by quanta key, so
 *     warm loads skip computeQuanta (see formatVersion below).
 *
 * Six columns are stored (decode index, result, taken bits, memory
 * address/data, significance sidecar): the operand columns are
 * rebuilt at load time by replaying the result stream through an
 * architectural register file, which is cheaper than decoding them
 * and shrinks segments by another ~40%. Version 2 packs the taken
 * column as one bit per *control* instruction (re-scattered along
 * the decode-index stream at load) and persists the capture-time
 * Ext3 tag planes of the result/memData columns as the sigTags
 * sidecar annex, so warm loads rebuild TraceBuffer's significance
 * sidecars without re-classifying stored values.
 *
 * Integrity and versioning rules:
 *  - load() is *fail-soft*: any mismatch — bad magic, unacceptable
 *    format version, CRC failure (header, directory or payload),
 *    truncated file, program fingerprint or capture-limit mismatch,
 *    malformed codec stream — returns nullptr with a reason string;
 *    callers recapture. A segment can never crash the process or
 *    yield a trace that differs from live capture.
 *  - version-1 segments (no sidecar annex, raw taken plane) still
 *    load, with the sidecars rebuilt by the batch kernels; load()
 *    reports them via its `legacy` out-parameter so the cache's
 *    write-through re-saves them in the current format (upgrade in
 *    place). Anything else fails soft as above.
 *  - save() writes to a temp file, fsyncs it and the directory
 *    (StoreOptions::durableSaves) and renames into place, so readers
 *    racing a writer only ever observe complete segments and a
 *    committed segment survives power loss.
 *  - reads decode straight out of a read-only mmap of the segment
 *    file; there is no read-then-decode copy of the payload bytes.
 *
 * Fault handling (see README "Failure model"): every byte of store
 * I/O goes through a sigcomp::Env (common/env.h), so the same code
 * path runs over the real filesystem and under the fault-injecting
 * test Env. Transient faults (EINTR/EIO-class) are retried a bounded
 * number of times with backoff; permanent faults (ENOSPC, EROFS)
 * fail the one operation softly and are classified for the caller
 * (save's EnvFault out-param, load's LoadFailure out-param) so the
 * cache can degrade instead of abort. Corrupt segments can be
 * quarantined — renamed aside, preserving the evidence while letting
 * a recapture re-save heal the store in place.
 *
 * Thread-safety: TraceStore is stateless between calls apart from
 * lock-free counters (all real state is the filesystem); concurrent
 * load/save/verify from any number of threads or processes is safe.
 */

#ifndef SIGCOMP_STORE_TRACE_STORE_H_
#define SIGCOMP_STORE_TRACE_STORE_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/telemetry.h"
#include "common/types.h"
#include "cpu/trace_buffer.h"
#include "isa/program.h"

namespace sigcomp::store
{

/**
 * Newest segment format load() accepts. Version 2 added the
 * capture-time significance sidecar column and the control-only
 * taken bit plane; version 3 appends an **annex section** after the
 * column payloads carrying the trace's derived SharedQuanta records
 * ("quanta:<key>" annexes, see pipeline/pipeline.h), so a warm-store
 * process skips computeQuanta as well as functional capture.
 *
 * The version written reflects the content: a segment with no
 * annexes to persist is written as version 2 (byte-identical to the
 * previous format), one with annexes as version 3 — so
 * annex-oblivious consumers of existing stores see no change, and
 * Session::run upgrades segments in place the first time it derives
 * quanta for them (TraceCache::persistAnnexes).
 *
 * Version-1 segments (no sidecar column, raw taken plane) still
 * load — the sidecar is rebuilt with the batch kernels — and are
 * transparently re-saved in the current format by the cache's
 * write-through upgrade (see TraceCache). Anything else fails soft.
 */
// sigcomp-lint: format-layout-begin
// Any change to the marked format-layout regions (here and in
// trace_store.cpp) must bump formatVersion and refresh the pin:
// `tools/sigcomp_lint --update-format-pin` (checked in CI).
constexpr std::uint32_t formatVersion = 3;

/** Format written for segments with no annex section. */
constexpr std::uint32_t formatVersionNoAnnex = 2;

/** Oldest format load() still accepts (sidecar-less segments). */
constexpr std::uint32_t formatVersionLegacy = 1;
// sigcomp-lint: format-layout-end

/** Per-column size accounting for stats/compression-ratio reports. */
struct ColumnStat
{
    std::string name;
    std::uint64_t rawBytes = 0;
    std::uint64_t encodedBytes = 0;

    double
    ratio() const
    {
        return encodedBytes
                   ? static_cast<double>(rawBytes) /
                         static_cast<double>(encodedBytes)
                   : 0.0;
    }
};

/** Decoded segment metadata (header + directory, no payloads). */
struct SegmentInfo
{
    std::string workload;
    std::string path;
    std::uint64_t instructions = 0;
    std::uint64_t fileBytes = 0;
    std::uint64_t captureLimit = 0;
    bool truncated = false;
    std::vector<ColumnStat> columns;
    /**
     * Persisted derived-record annexes (version >= 3), one entry per
     * record, named by annex key. Excluded from rawBytes()/
     * encodedBytes(): those report the trace columns proper.
     */
    std::vector<ColumnStat> annexes;

    std::uint64_t rawBytes() const;
    std::uint64_t encodedBytes() const;
};

/** Open-time and fault-policy knobs for a TraceStore. */
struct StoreOptions
{
    bool readOnly = false;

    /**
     * fsync the temp file and parent directory around the publishing
     * rename, so a committed segment survives power loss. Defaults
     * on; a scratch store (bench cold phases, tests) can turn it off
     * and keep only the atomic-replace guarantee.
     */
    bool durableSaves = true;

    /** Whole-operation retries for Transient-class faults. */
    unsigned transientRetries = 2;

    /** Sleep between transient retries (doubles per attempt). */
    unsigned retryBackoffMs = 1;

    /** I/O seam; nullptr means the real filesystem (Env::posix()). */
    Env *env = nullptr;

    /**
     * Metric namespace for store.retries / store.load_bytes /
     * store.save_bytes; nullptr means the process-wide registry.
     * TraceCache passes its own so per-Session report deltas see
     * the store traffic of that session only.
     */
    telemetry::Registry *registry = nullptr;
};

/** Why a load() returned nullptr, classified for recovery policy. */
enum class LoadFailure : std::uint8_t
{
    None = 0,
    /** No segment on disk: the ordinary cold-store miss. */
    Missing,
    /**
     * A valid segment for different capture parameters or program
     * (fingerprint/capture-limit mismatch): not damage, the next
     * write-through save simply replaces it.
     */
    Stale,
    /**
     * CRC/codec/structural damage: quarantine() preserves the bytes
     * and a recapture heals the store.
     */
    Corrupt,
    /** The read itself failed (EIO-class) after retries. */
    Io,
};

/**
 * One directory of trace segments. Cheap handle: holds only the
 * path, the fault policy, and lock-free counters.
 */
class TraceStore
{
  public:
    /**
     * Open (and unless read-only, create) the store directory.
     * Fail-soft when a writable store's directory cannot be created:
     * the store opens empty and every save reports the failure; a
     * missing read-only store simply contains nothing.
     */
    explicit TraceStore(std::string dir, const StoreOptions &options);

    explicit TraceStore(std::string dir, bool read_only = false)
        : TraceStore(std::move(dir),
                     StoreOptions{.readOnly = read_only})
    {}

    const std::string &dir() const { return dir_; }
    bool readOnly() const { return readOnly_; }

    /** The I/O seam this store runs over (never null). */
    Env &env() const { return *env_; }

    /** Transient-fault retries performed over this handle's lifetime. */
    std::uint64_t retries() const
    {
        return retries_.load(std::memory_order_relaxed);
    }

    /**
     * Load @p workload's trace, rebuilt against @p program (the store
     * persists only the dynamic columns; static program state is
     * rebuilt by the workload registry and checked against the
     * fingerprint). @p capture_limit must match the segment's capture
     * parameters. Fail-soft: nullptr on any mismatch or corruption,
     * with the reason in @p why when non-null.
     *
     * Segments are decoded straight out of a read-only mapping of
     * the file (no read-then-decode copy); @p legacy, when non-null,
     * is set when the segment was an accepted older format — the
     * caller should re-save the returned buffer to upgrade it in
     * place (TraceCache's write-through does).
     *
     * @p failure, when non-null, classifies a nullptr return for the
     * caller's recovery policy (see LoadFailure).
     */
    std::shared_ptr<cpu::TraceBuffer>
    load(const std::string &workload, const isa::Program &program,
         DWord capture_limit, std::string *why = nullptr,
         bool *legacy = nullptr, LoadFailure *failure = nullptr) const;

    /**
     * Persist @p trace as @p workload's segment (atomic
     * replace-on-rename, fsync-guarded under durableSaves, transient
     * faults retried per StoreOptions). @return false (reason in
     * @p why, fault class in @p fault) on I/O failure or when the
     * store is read-only; never throws — a failed save only costs a
     * later recapture. @p fault lets the caller tell a retryable
     * hiccup from a permanently unwritable store.
     *
     * @p cancel is polled between transient-fault retry attempts: a
     * fired token abandons the save instead of retrying. Atomicity
     * is unaffected — each attempt either publishes a complete
     * segment via rename or leaves only an ignorable temp, so a
     * cancelled save leaves any previously published segment
     * bit-identical on disk.
     */
    bool save(const std::string &workload, const cpu::TraceBuffer &trace,
              DWord capture_limit, std::string *why = nullptr,
              EnvFault *fault = nullptr,
              const CancelToken *cancel = nullptr) const;

    /**
     * Move @p workload's (presumed damaged) segment aside to a
     * `.quar.<pid>.<seq>` sibling: the bytes survive for post-mortem,
     * list()/load() no longer see the segment, and the next capture
     * re-saves a healthy one. @return true when a segment was
     * renamed; @p quarantined_path receives the new path.
     */
    bool quarantine(const std::string &workload,
                    std::string *quarantined_path = nullptr) const;

    /** Quarantined segment files present (filenames, sorted). */
    std::vector<std::string> quarantined() const;

    /**
     * Remove orphaned `<segment>.tmp.*` files left by writers that
     * died between create and rename. Safe against live writers only
     * in the same sense as gc: don't run it while another process is
     * actively saving. @return the number of files removed.
     */
    std::size_t cleanOrphanTemps() const;

    /** True when a segment file for @p workload exists. */
    bool contains(const std::string &workload) const;

    /** Delete @p workload's segment. @return true when removed. */
    bool remove(const std::string &workload) const;

    /** Workload names of all segments present, sorted. */
    std::vector<std::string> list() const;

    /**
     * Read a segment's header and column directory (CRC-checked, no
     * payload decode). @return false on any corruption.
     */
    bool info(const std::string &workload, SegmentInfo &out,
              std::string *why = nullptr) const;

    /**
     * Full integrity check: header, directory and payload CRCs plus
     * codec decode; with @p program also the fingerprint.
     */
    bool verify(const std::string &workload,
                const isa::Program *program = nullptr,
                std::string *why = nullptr) const;

    /**
     * Annex keys stored in @p workload's segment (empty for missing,
     * damaged, or pre-annex segments). Cheap: header + directories
     * only, no payload decode. TraceCache::persistAnnexes uses this
     * to decide whether a re-save would add anything.
     */
    std::vector<std::string> annexKeys(const std::string &workload) const;

    /**
     * The "quanta:" annex keys of @p trace that save() would
     * actually persist — canonical records only, capped at the
     * format's per-segment annex limit. persistAnnexes compares
     * THESE against annexKeys(), so an ineligible record can never
     * cause endless no-op re-saves.
     */
    static std::vector<std::string>
    persistableAnnexKeys(const cpu::TraceBuffer &trace);

    /** Segment path for @p workload (exists or not). */
    std::string segmentPath(const std::string &workload) const;

    /**
     * Fingerprint binding a segment to the exact program it was
     * captured from: CRC over the text words, data segment and entry
     * point.
     */
    static std::uint32_t programFingerprint(const isa::Program &program);

  private:
    /** One save attempt; returns the fault class (None on success). */
    EnvFault saveOnce(const std::string &path,
                      const std::vector<std::uint8_t> &bytes,
                      std::string *why) const;

    /** Read a whole segment file, retrying transient faults. */
    std::unique_ptr<Env::FileView>
    mapSegment(const std::string &path, EnvStatus *status) const;

    /** Sleep before transient retry @p attempt (doubling backoff). */
    void backoff(unsigned attempt) const;

    std::string dir_;
    bool readOnly_;
    bool durableSaves_;
    unsigned transientRetries_;
    unsigned retryBackoffMs_;
    Env *env_;
    /** Set when the writable store's directory could not be created. */
    bool dirFailed_ = false;
    mutable std::atomic<std::uint64_t> retries_{0};
    /**
     * Telemetry handles (StoreOptions::registry). retriesMetric_
     * mirrors retries_ — the atomic stays the per-handle accessor
     * retries() reads; the counter feeds the registry snapshot.
     */
    telemetry::Registry &metrics_;
    telemetry::Counter &retriesMetric_;
    telemetry::Histogram &loadBytes_;
    telemetry::Histogram &saveBytes_;
};

/** Whole-store aggregation for ratio/stats reporting. */
struct StoreStats
{
    std::size_t segments = 0;
    std::uint64_t instructions = 0;
    std::uint64_t fileBytes = 0;
    /** Per-column totals summed across all readable segments. */
    std::vector<ColumnStat> columns;

    std::uint64_t rawBytes() const;
    std::uint64_t encodedBytes() const;

    double
    totalRatio() const
    {
        return encodedBytes()
                   ? static_cast<double>(rawBytes()) /
                         static_cast<double>(encodedBytes())
                   : 0.0;
    }
};

/**
 * Sum header/directory metadata over every readable segment in
 * @p store (unreadable segments are skipped — they are recapture
 * fodder, not an error here).
 */
StoreStats aggregateStats(const TraceStore &store);

/**
 * Emit @p columns as JSON objects
 * `{"name", "raw_bytes", "encoded_bytes", "ratio"}`, one per line
 * prefixed with @p indent, comma-separated — the shared body of the
 * `sigcomp_store stats --json` and BENCH_suite.json reports.
 */
void writeColumnsJson(std::FILE *f,
                      const std::vector<ColumnStat> &columns,
                      const char *indent);

} // namespace sigcomp::store

#endif // SIGCOMP_STORE_TRACE_STORE_H_
