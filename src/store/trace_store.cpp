#include "store/trace_store.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unistd.h>

#include "common/crc32.h"
#include "common/env.h"
#include "common/logging.h"
#include "cpu/trace_buffer.h"
#include "pipeline/pipeline.h"
#include "sigcomp/sig_kernels.h"
#include "store/codec.h"

namespace sigcomp::store
{

namespace
{

// sigcomp-lint: format-layout-begin
constexpr std::uint32_t kMagic = 0x52544353u; // 'SCTR' little-endian
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kDirEntryBytes = 32;
constexpr std::uint32_t kFlagTruncated = 1u << 0;

/**
 * Column ids, fixed by the format (order = payload order). The
 * operand columns (srcRs/srcRt) are deliberately NOT stored: the
 * architectural register file is a pure function of the result
 * stream and the decoded read/write flags, so load-time
 * reconstruction (one register-replay pass) costs less than
 * decoding two more significance-packed columns and shrinks the
 * segments by ~40%.
 *
 * Version 2 appends the significance sidecar column (packed 4-bit
 * Ext3 tags of the result and memData values, the capture-time
 * sidecars of cpu/trace_buffer.h) and re-encodes the taken column as
 * control-instruction-only bits; version-1 segments carry neither
 * and are rebuilt at load.
 */
enum ColumnId : std::uint32_t
{
    ColDecIdx = 0,
    ColResult = 1,
    ColTaken = 2,
    ColMemAddr = 3,
    ColMemData = 4,
    ColSigTags = 5,
    NumColumns = 6,
    NumColumnsV1 = 5,
};

/** Taken-column submodes (first payload byte, version >= 2). */
constexpr std::uint8_t kTakenFullPlane = 0;
constexpr std::uint8_t kTakenControlOnly = 1;
// sigcomp-lint: format-layout-end

const char *
columnName(std::uint32_t id)
{
    switch (id) {
    case ColDecIdx: return "decIdx";
    case ColResult: return "result";
    case ColTaken: return "taken";
    case ColMemAddr: return "memAddr";
    case ColMemData: return "memData";
    case ColSigTags: return "sigTags";
    default: return "?";
    }
}

bool
fail(std::string *why, const std::string &reason)
{
    if (why != nullptr)
        *why = reason;
    return false;
}

/**
 * Workload names become file stems; escape anything non-portable.
 * Escaping alone would alias distinct names ("a/b" and "a b" both
 * become "a_b"), and aliased segments silently clobber each other
 * through the fingerprint check, so any escaped name also gets a
 * hash of the raw name appended.
 */
std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    bool escaped = name.empty();
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                        c == '_';
        out.push_back(ok ? c : '_');
        escaped |= !ok;
    }
    if (escaped) {
        char suffix[12];
        std::snprintf(suffix, sizeof(suffix), "-%08x",
                      crc32(0, name.data(), name.size()));
        out += suffix;
    }
    return out;
}

/** Parsed header + directory, offsets into the raw file bytes. */
struct Segment
{
    std::uint32_t version = formatVersion;
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t captureLimit = 0;
    std::uint32_t programCrc = 0;
    std::uint32_t flags = 0;
    std::uint32_t exitCode = 0;
    std::uint32_t stopReason = 0;
    std::uint32_t lastNextPc = 0;

    // sigcomp-lint: format-layout-begin
    struct Column
    {
        std::uint32_t id = 0;
        std::uint64_t rawBytes = 0;
        std::uint64_t encBytes = 0;
        std::uint32_t payloadCrc = 0;
        std::size_t payloadOffset = 0;
    };
    std::vector<Column> columns;

    /** Derived-record annexes (version >= 3). */
    struct Annex
    {
        std::string key;
        std::uint64_t rawBytes = 0;
        std::uint64_t encBytes = 0;
        std::uint32_t payloadCrc = 0;
        std::size_t payloadOffset = 0;
    };
    std::vector<Annex> annexes;
    // sigcomp-lint: format-layout-end
};

// sigcomp-lint: format-layout-begin
/** Sanity cap on persisted annex records per segment. */
constexpr std::uint32_t kMaxAnnexes = 256;
/** Sanity cap on one annex key's length. */
constexpr std::uint32_t kMaxAnnexKey = 4096;
// sigcomp-lint: format-layout-end

/**
 * Parse and CRC-check header + directory (not payload contents).
 * Fail-soft on every malformed input.
 */
bool
parseSegment(const std::uint8_t *bytes, std::size_t size, Segment &seg,
             std::string *why)
{
    if (size < kHeaderBytes)
        return fail(why, "file shorter than header");
    const std::uint8_t *h = bytes;
    if (getU32(h) != kMagic)
        return fail(why, "bad magic");
    const std::uint32_t version = getU32(h + 4);
    if (version < formatVersionLegacy || version > formatVersion)
        return fail(why, "format version " + std::to_string(version) +
                             " not in [" +
                             std::to_string(formatVersionLegacy) + ", " +
                             std::to_string(formatVersion) + "]");
    if (crc32(0, h, 60) != getU32(h + 60))
        return fail(why, "header CRC mismatch");

    seg.version = version;
    seg.instructions = getU64(h + 8);
    seg.memOps = getU64(h + 16);
    seg.captureLimit = getU64(h + 24);
    seg.programCrc = getU32(h + 32);
    seg.flags = getU32(h + 36);
    seg.exitCode = getU32(h + 40);
    seg.stopReason = getU32(h + 44);
    seg.lastNextPc = getU32(h + 48);
    const std::uint32_t column_count = getU32(h + 52);
    const std::uint32_t want_columns =
        version >= 2 ? NumColumns : NumColumnsV1;
    if (column_count != want_columns)
        return fail(why, "unexpected column count");

    const std::size_t dir_bytes = column_count * kDirEntryBytes;
    if (size < kHeaderBytes + dir_bytes + 4)
        return fail(why, "file shorter than column directory");
    const std::uint8_t *dir = h + kHeaderBytes;
    if (crc32(0, dir, dir_bytes) != getU32(dir + dir_bytes))
        return fail(why, "directory CRC mismatch");

    std::size_t offset = kHeaderBytes + dir_bytes + 4;
    seg.columns.resize(column_count);
    for (std::uint32_t c = 0; c < column_count; ++c) {
        const std::uint8_t *e = dir + c * kDirEntryBytes;
        Segment::Column &col = seg.columns[c];
        col.id = getU32(e);
        col.rawBytes = getU64(e + 8);
        col.encBytes = getU64(e + 16);
        col.payloadCrc = getU32(e + 24);
        col.payloadOffset = offset;
        if (col.id != c)
            return fail(why, "column directory out of order");
        if (col.encBytes > size - offset)
            return fail(why, "column payload overruns file");
        offset += col.encBytes;
    }

    // Annex section (version >= 3): count, variable-length entries,
    // directory CRC, then the annex payloads.
    if (version >= 3) {
        const std::size_t dir_start = offset;
        if (size - offset < 8)
            return fail(why, "annex directory truncated");
        const std::uint32_t count = getU32(bytes + offset);
        offset += 4;
        if (count > kMaxAnnexes)
            return fail(why, "annex count implausible");
        seg.annexes.resize(count);
        for (std::uint32_t a = 0; a < count; ++a) {
            Segment::Annex &ax = seg.annexes[a];
            if (size - offset < 4)
                return fail(why, "annex directory truncated");
            const std::uint32_t key_len = getU32(bytes + offset);
            offset += 4;
            if (key_len == 0 || key_len > kMaxAnnexKey ||
                size - offset < key_len + 20)
                return fail(why, "annex directory truncated");
            ax.key.assign(reinterpret_cast<const char *>(bytes + offset),
                          key_len);
            offset += key_len;
            ax.rawBytes = getU64(bytes + offset);
            ax.encBytes = getU64(bytes + offset + 8);
            ax.payloadCrc = getU32(bytes + offset + 16);
            offset += 20;
        }
        if (size - offset < 4)
            return fail(why, "annex directory truncated");
        if (crc32(0, bytes + dir_start, offset - dir_start) !=
            getU32(bytes + offset))
            return fail(why, "annex directory CRC mismatch");
        offset += 4;
        for (Segment::Annex &ax : seg.annexes) {
            ax.payloadOffset = offset;
            if (ax.encBytes > size - offset)
                return fail(why, "annex payload overruns file");
            offset += ax.encBytes;
        }
    }
    if (offset != size)
        return fail(why, "trailing bytes after payloads");
    return true;
}

/** CRC-check and decode one 32-bit column. */
bool
decodeCol32(const std::uint8_t *bytes, const Segment::Column &col,
            std::size_t n, std::vector<std::uint32_t> &out,
            std::string *why)
{
    SIGCOMP_SPAN("codec.decode_column");
    const std::uint8_t *p = bytes + col.payloadOffset;
    const std::size_t len = static_cast<std::size_t>(col.encBytes);
    if (col.rawBytes != 4 * static_cast<std::uint64_t>(n))
        return fail(why, std::string(columnName(col.id)) +
                             ": raw size mismatch");
    if (crc32(0, p, len) != col.payloadCrc)
        return fail(why,
                    std::string(columnName(col.id)) + ": payload CRC");
    if (!decodeColumn32(p, len, n, out))
        return fail(why, std::string(columnName(col.id)) +
                             ": malformed codec stream");
    return true;
}

bool
decodeCol64(const std::uint8_t *bytes, const Segment::Column &col,
            std::size_t n, std::vector<std::uint64_t> &out,
            std::string *why)
{
    SIGCOMP_SPAN("codec.decode_column");
    const std::uint8_t *p = bytes + col.payloadOffset;
    const std::size_t len = static_cast<std::size_t>(col.encBytes);
    if (col.rawBytes != 8 * static_cast<std::uint64_t>(n))
        return fail(why, std::string(columnName(col.id)) +
                             ": raw size mismatch");
    if (crc32(0, p, len) != col.payloadCrc)
        return fail(why,
                    std::string(columnName(col.id)) + ": payload CRC");
    if (!decodeColumn64Raw(p, len, n, out))
        return fail(why, std::string(columnName(col.id)) +
                             ": malformed raw stream");
    return true;
}

/** CRC-check a column and return its payload view. */
bool
columnPayload(const std::uint8_t *bytes, const Segment::Column &col,
              const std::uint8_t *&p, std::size_t &len, std::string *why)
{
    p = bytes + col.payloadOffset;
    len = static_cast<std::size_t>(col.encBytes);
    if (crc32(0, p, len) != col.payloadCrc)
        return fail(why,
                    std::string(columnName(col.id)) + ": payload CRC");
    return true;
}

/**
 * Structural check of a v2 taken payload without expanding it (used
 * by program-less verify). @return the consistency of the submode
 * framing against the payload length.
 */
bool
checkTakenPayload(const std::uint8_t *p, std::size_t len,
                  std::uint64_t instructions, std::string *why)
{
    if (len < 1)
        return fail(why, "taken: empty payload");
    if (p[0] == kTakenFullPlane) {
        const std::uint64_t words = (instructions + 63) / 64;
        if (len != 1 + 8 * words)
            return fail(why, "taken: full-plane length mismatch");
        return true;
    }
    if (p[0] != kTakenControlOnly)
        return fail(why, "taken: unknown submode");
    if (len < 5)
        return fail(why, "taken: truncated header");
    const std::uint32_t nbits = getU32(p + 1);
    if (nbits > instructions)
        return fail(why, "taken: more bits than instructions");
    if (len != 5 + 8 * ((static_cast<std::size_t>(nbits) + 63) / 64))
        return fail(why, "taken: control-only length mismatch");
    return true;
}

// ---- SharedQuanta annex codec ----------------------------------------
//
// A trace's "quanta:<key>" annexes (pipeline::SharedQuanta — the
// design-independent per-instruction replay records, see
// pipeline/pipeline.h) are pure derived data, expensive to recompute
// (computeQuanta is the heaviest half of a replay), and canonical
// per (trace, encoding, memory geometry, compressor), so version-3
// segments persist them. Layout of one annex payload:
//
//   u64 instruction count (must match the segment header)
//   u64 block-delta count (must be ceil(n / TraceView block size))
//   six planes of n u32 values, each framed as u64 encoded length +
//     encodeColumn32 stream — the 24-byte Packed record split into
//     words so the significance codec sees its natural skew:
//       w0 fetchBytes|srcChunks<<8|numSrcRegs<<16|exChunks<<24
//       w1 exWorkBytes|memChunks<<8|memAccessBytes<<16|resChunks<<24
//       w2 flags|pcChangedBlocks<<8|pcRippleExtra<<16
//       w3 ifExtra   w4 memExtra   w5 latchBase
//   per block delta: 16 raw u64 (8 activity stages x {compressed,
//     baseline}; the latch pair is zero by construction)
//   three CacheStats (l1i, l1d, l2): 6 raw u64 each
//
// Decoding validates every count against the segment header, so a
// damaged annex fails the load softly like any other column damage.

namespace
{

using pipeline::SharedQuanta;

/** Block-delta count a canonical record must have for @p n instrs. */
std::size_t
canonicalBlocks(std::size_t n)
{
    return n == 0 ? 0
                  : (n + cpu::TraceView::defaultBlockSize - 1) /
                        cpu::TraceView::defaultBlockSize;
}

void
putStats(std::vector<std::uint8_t> &out, const mem::CacheStats &s)
{
    putU64(out, s.reads);
    putU64(out, s.writes);
    putU64(out, s.readMisses);
    putU64(out, s.writeMisses);
    putU64(out, s.fills);
    putU64(out, s.writebacks);
}

void
getStats(const std::uint8_t *p, mem::CacheStats &s)
{
    s.reads = getU64(p);
    s.writes = getU64(p + 8);
    s.readMisses = getU64(p + 16);
    s.writeMisses = getU64(p + 24);
    s.fills = getU64(p + 32);
    s.writebacks = getU64(p + 40);
}

/**
 * The "quanta:" annex keys of @p b that a save would persist:
 * canonical records only (per-instruction coverage and TraceView
 * block structure), capped at kMaxAnnexes. The single source of
 * truth shared by serialize() and persistableAnnexKeys(), so the
 * cache's should-I-re-save comparison can never disagree with what
 * a save would actually write.
 */
std::vector<std::string>
eligibleQuantaKeys(const cpu::TraceBuffer &b)
{
    const std::size_t n = b.size();
    std::vector<std::string> keys;
    for (const std::string &key : b.annexKeys("quanta:")) {
        const auto rec = std::static_pointer_cast<const SharedQuanta>(
            b.annexGet(key));
        if (rec == nullptr || rec->q.size() != n ||
            rec->blockDelta.size() != canonicalBlocks(n))
            continue;
        keys.push_back(key);
        if (keys.size() == kMaxAnnexes)
            break;
    }
    return keys;
}

std::vector<std::uint8_t>
encodeQuanta(const SharedQuanta &rec)
{
    const std::size_t n = rec.q.size();
    std::vector<std::uint8_t> out;
    putU64(out, n);
    putU64(out, rec.blockDelta.size());

    std::vector<std::uint32_t> plane(n);
    std::vector<std::uint8_t> enc;
    for (unsigned w = 0; w < 6; ++w) {
        for (std::size_t i = 0; i < n; ++i) {
            const SharedQuanta::Packed &p = rec.q[i];
            switch (w) {
            case 0:
                plane[i] = static_cast<std::uint32_t>(p.fetchBytes) |
                           (static_cast<std::uint32_t>(p.srcChunks) << 8) |
                           (static_cast<std::uint32_t>(p.numSrcRegs)
                            << 16) |
                           (static_cast<std::uint32_t>(p.exChunks) << 24);
                break;
            case 1:
                plane[i] =
                    static_cast<std::uint32_t>(p.exWorkBytes) |
                    (static_cast<std::uint32_t>(p.memChunks) << 8) |
                    (static_cast<std::uint32_t>(p.memAccessBytes) << 16) |
                    (static_cast<std::uint32_t>(p.resChunks) << 24);
                break;
            case 2:
                plane[i] =
                    static_cast<std::uint32_t>(p.flags) |
                    (static_cast<std::uint32_t>(p.pcChangedBlocks) << 8) |
                    (static_cast<std::uint32_t>(p.pcRippleExtra) << 16);
                break;
            case 3: plane[i] = p.ifExtra; break;
            case 4: plane[i] = p.memExtra; break;
            default: plane[i] = p.latchBase; break;
            }
        }
        enc.clear();
        encodeColumn32(plane.data(), n, enc);
        putU64(out, enc.size());
        out.insert(out.end(), enc.begin(), enc.end());
    }

    for (const pipeline::ActivityTotals &a : rec.blockDelta) {
        const pipeline::BitPair *pairs[] = {&a.fetch,  &a.rfRead,
                                            &a.rfWrite, &a.alu,
                                            &a.dcData, &a.dcTag,
                                            &a.pcInc,  &a.latch};
        for (const pipeline::BitPair *bp : pairs) {
            putU64(out, bp->compressed);
            putU64(out, bp->baseline);
        }
    }
    putStats(out, rec.l1i);
    putStats(out, rec.l1d);
    putStats(out, rec.l2);
    return out;
}

bool
decodeQuanta(const std::uint8_t *bytes, std::size_t len, std::size_t n,
             std::shared_ptr<SharedQuanta> &out, std::string *why)
{
    std::size_t off = 0;
    auto need = [&](std::size_t k) { return len - off >= k; };
    if (!need(16))
        return fail(why, "quanta annex: truncated header");
    if (getU64(bytes) != n)
        return fail(why, "quanta annex: instruction count mismatch");
    const std::uint64_t blocks = getU64(bytes + 8);
    if (blocks != canonicalBlocks(n))
        return fail(why, "quanta annex: non-canonical block count");
    off = 16;

    auto rec = std::make_shared<SharedQuanta>();
    rec->q.resize(n);
    std::vector<std::uint32_t> plane;
    for (unsigned w = 0; w < 6; ++w) {
        if (!need(8))
            return fail(why, "quanta annex: truncated plane");
        const std::uint64_t enc_len = getU64(bytes + off);
        off += 8;
        if (!need(enc_len))
            return fail(why, "quanta annex: plane overruns payload");
        if (!decodeColumn32(bytes + off, enc_len, n, plane))
            return fail(why, "quanta annex: malformed plane stream");
        off += enc_len;
        for (std::size_t i = 0; i < n; ++i) {
            SharedQuanta::Packed &p = rec->q[i];
            const std::uint32_t v = plane[i];
            switch (w) {
            case 0:
                p.fetchBytes = static_cast<std::uint8_t>(v);
                p.srcChunks = static_cast<std::uint8_t>(v >> 8);
                p.numSrcRegs = static_cast<std::uint8_t>(v >> 16);
                p.exChunks = static_cast<std::uint8_t>(v >> 24);
                break;
            case 1:
                p.exWorkBytes = static_cast<std::uint8_t>(v);
                p.memChunks = static_cast<std::uint8_t>(v >> 8);
                p.memAccessBytes = static_cast<std::uint8_t>(v >> 16);
                p.resChunks = static_cast<std::uint8_t>(v >> 24);
                break;
            case 2:
                if ((v >> 24) != 0)
                    return fail(why, "quanta annex: flag plane garbage");
                p.flags = static_cast<std::uint8_t>(v);
                p.pcChangedBlocks = static_cast<std::uint8_t>(v >> 8);
                p.pcRippleExtra = static_cast<std::uint8_t>(v >> 16);
                p.pad = 0;
                break;
            case 3: p.ifExtra = v; break;
            case 4: p.memExtra = v; break;
            default: p.latchBase = v; break;
            }
        }
    }

    const std::size_t tail = blocks * 16 * 8 + 3 * 6 * 8;
    if (len - off != tail)
        return fail(why, "quanta annex: size mismatch");
    rec->blockDelta.resize(blocks);
    for (std::uint64_t b = 0; b < blocks; ++b) {
        pipeline::ActivityTotals &a = rec->blockDelta[b];
        pipeline::BitPair *pairs[] = {&a.fetch,  &a.rfRead, &a.rfWrite,
                                      &a.alu,    &a.dcData, &a.dcTag,
                                      &a.pcInc,  &a.latch};
        for (pipeline::BitPair *bp : pairs) {
            bp->compressed = getU64(bytes + off);
            bp->baseline = getU64(bytes + off + 8);
            off += 16;
        }
    }
    getStats(bytes + off, rec->l1i);
    getStats(bytes + off + 48, rec->l1d);
    getStats(bytes + off + 96, rec->l2);
    out = std::move(rec);
    return true;
}

} // namespace

} // namespace

/**
 * The one class allowed to touch TraceBuffer's private columns
 * (befriended in cpu/trace_buffer.h): turns a buffer into segment
 * bytes and segment bytes back into a buffer.
 */
class TraceSerializer
{
  public:
    static std::vector<std::uint8_t>
    serialize(const cpu::TraceBuffer &b, DWord capture_limit,
              std::uint32_t program_crc)
    {
        const std::size_t n = b.decIdx_.size();

        // Capture-time sidecar tags of the stored value columns: the
        // SigPack encoder consumes them directly (no classify pass)
        // and they persist as the sigTags column. Every buffer that
        // reaches save() has them (capture and deserialize both
        // fill), but compute them on the spot if one ever doesn't.
        std::vector<std::uint8_t> res_tags(n);
        std::vector<std::uint8_t> mem_tags;
        if (b.sigRegs_.size() == n && b.sigMem_.size() == b.memData_.size()) {
            for (std::size_t i = 0; i < n; ++i)
                res_tags[i] =
                    static_cast<std::uint8_t>((b.sigRegs_[i] >> 8) & 0xF);
            mem_tags = b.sigMem_;
        } else {
            sig::classifyExt3Block(b.result_v_.data(), n,
                                   res_tags.data());
            mem_tags.resize(b.memData_.size());
            sig::classifyExt3Block(b.memData_.data(), b.memData_.size(),
                                   mem_tags.data());
        }

        // Encode every payload first so the directory can record
        // exact sizes and CRCs. srcRs_/srcRt_ are not written: the
        // loader rebuilds them from the result column (see ColumnId).
        std::vector<std::uint8_t> payloads[NumColumns];
        std::uint64_t raw_bytes[NumColumns];
        {
            SIGCOMP_SPAN("codec.encode_column");
            encode32(b.decIdx_, payloads[ColDecIdx],
                     raw_bytes[ColDecIdx]);
        }
        {
            SIGCOMP_SPAN("codec.encode_column");
            encodeColumn32(b.result_v_.data(), n, payloads[ColResult],
                           res_tags.data());
        }
        raw_bytes[ColResult] = 4 * static_cast<std::uint64_t>(n);
        {
            SIGCOMP_SPAN("codec.encode_column");
            encodeTaken(b, payloads[ColTaken]);
        }
        raw_bytes[ColTaken] = 8 * b.taken_.size();
        {
            SIGCOMP_SPAN("codec.encode_column");
            encode32(b.memAddr_, payloads[ColMemAddr],
                     raw_bytes[ColMemAddr]);
        }
        {
            SIGCOMP_SPAN("codec.encode_column");
            encodeColumn32(b.memData_.data(), b.memData_.size(),
                           payloads[ColMemData], mem_tags.data());
        }
        raw_bytes[ColMemData] =
            4 * static_cast<std::uint64_t>(b.memData_.size());
        {
            SIGCOMP_SPAN("codec.encode_column");
            packNibbles(res_tags, payloads[ColSigTags]);
            packNibbles(mem_tags, payloads[ColSigTags]);
        }
        raw_bytes[ColSigTags] = n + mem_tags.size();

        // Derived SharedQuanta records published on the buffer by
        // replays: persist every canonical one, so warm-store
        // processes skip computeQuanta. A buffer that has none (the
        // capture-time write-through) serializes as the annex-less
        // version-2 layout, byte-identical to the previous format.
        struct AnnexPayload
        {
            std::string key;
            std::uint64_t rawBytes = 0;
            std::vector<std::uint8_t> bytes;
        };
        std::vector<AnnexPayload> annexes;
        for (const std::string &key : eligibleQuantaKeys(b)) {
            const auto rec = std::static_pointer_cast<const SharedQuanta>(
                b.annexGet(key));
            if (rec == nullptr)
                continue; // raced away; next save picks it up
            annexes.push_back({key, rec->bytes(), encodeQuanta(*rec)});
        }
        const std::uint32_t version =
            annexes.empty() ? formatVersionNoAnnex : formatVersion;

        std::vector<std::uint8_t> out;
        std::size_t total_payload = 0;
        for (const auto &payload : payloads)
            total_payload += payload.size();
        out.reserve(kHeaderBytes + NumColumns * kDirEntryBytes + 4 +
                    total_payload);

        // -- header ---------------------------------------------------
        // sigcomp-lint: format-layout-begin
        putU32(out, kMagic);
        putU32(out, version);
        putU64(out, n);
        putU64(out, b.memAddr_.size());
        putU64(out, capture_limit);
        putU32(out, program_crc);
        putU32(out, b.truncated() ? kFlagTruncated : 0);
        putU32(out, b.result_.exitCode);
        putU32(out, static_cast<std::uint32_t>(b.result_.reason));
        putU32(out, b.lastNextPc_);
        putU32(out, NumColumns);
        putU32(out, 0); // reserved
        putU32(out, crc32(0, out.data(), 60));

        // -- column directory -----------------------------------------
        const std::size_t dir_start = out.size();
        for (std::uint32_t c = 0; c < NumColumns; ++c) {
            putU32(out, c);
            putU32(out, 0); // reserved
            putU64(out, raw_bytes[c]);
            putU64(out, payloads[c].size());
            putU32(out, crc32(0, payloads[c].data(), payloads[c].size()));
            putU32(out, 0); // reserved
        }
        putU32(out, crc32(0, out.data() + dir_start,
                          NumColumns * kDirEntryBytes));

        // -- payloads --------------------------------------------------
        for (const auto &payload : payloads)
            out.insert(out.end(), payload.begin(), payload.end());

        // -- annex section (version 3 only) ----------------------------
        if (!annexes.empty()) {
            const std::size_t dir_start = out.size();
            putU32(out, static_cast<std::uint32_t>(annexes.size()));
            for (const AnnexPayload &ax : annexes) {
                putU32(out, static_cast<std::uint32_t>(ax.key.size()));
                out.insert(out.end(), ax.key.begin(), ax.key.end());
                putU64(out, ax.rawBytes);
                putU64(out, ax.bytes.size());
                putU32(out, crc32(0, ax.bytes.data(), ax.bytes.size()));
            }
            putU32(out, crc32(0, out.data() + dir_start,
                              out.size() - dir_start));
            for (const AnnexPayload &ax : annexes)
                out.insert(out.end(), ax.bytes.begin(), ax.bytes.end());
        }
        // sigcomp-lint: format-layout-end
        return out;
    }

    /**
     * Rebuild a TraceBuffer from parsed segment @p seg backed by the
     * mapped file @p bytes, binding it to @p program. Fail-soft:
     * nullptr + reason on any inconsistency.
     */
    static std::shared_ptr<cpu::TraceBuffer>
    deserialize(const std::uint8_t *bytes, const Segment &seg,
                const isa::Program &program, std::string *why)
    {
        const std::size_t n = static_cast<std::size_t>(seg.instructions);
        const std::size_t mem_ops = static_cast<std::size_t>(seg.memOps);

        auto buf = std::make_shared<cpu::TraceBuffer>(
            cpu::TraceBuffer::makeForRebuild());
        buf->program_ = program;
        buf->decoded_.reserve(program.text().size());
        for (const isa::Instruction &inst : program.text())
            buf->decoded_.push_back(isa::decode(inst));

        if (!decodeCol32(bytes, seg.columns[ColDecIdx], n, buf->decIdx_,
                         why) ||
            !decodeCol32(bytes, seg.columns[ColResult], n,
                         buf->result_v_, why) ||
            !decodeCol32(bytes, seg.columns[ColMemAddr], mem_ops,
                         buf->memAddr_, why) ||
            !decodeCol32(bytes, seg.columns[ColMemData], mem_ops,
                         buf->memData_, why)) {
            return nullptr;
        }

        // One fused pass over the stream does three jobs:
        //  - bounds-check every decode index (replay gathers through
        //    them unchecked, so a wrong segment must die here,
        //    softly);
        //  - verify the memory-op count replay's load/store cursor
        //    will consume;
        //  - rebuild the srcRs/srcRt operand columns, which the
        //    format omits: replaying the result stream through an
        //    architectural register file reproduces them exactly
        //    (registers start at reset state — zeros, $sp at
        //    stackTop — and syscalls never write registers; the
        //    round-trip tests pin this bit-for-bit).
        // The replay pass below touches four small facts per static
        // instruction; gather them into a 4-byte side table first so
        // the per-dynamic-instruction loop streams through one dense
        // array instead of striding across the (string-bearing)
        // DecodedInstr records.
        const std::size_t text_size = buf->decoded_.size();
        struct ReplayFacts
        {
            std::uint8_t rs, rt, dest;
            /** bit 0 = load/store, bit 1 = control transfer. */
            std::uint8_t flags;
        };
        std::vector<ReplayFacts> facts(text_size);
        for (std::size_t t = 0; t < text_size; ++t) {
            const isa::DecodedInstr &d = buf->decoded_[t];
            facts[t] = {
                static_cast<std::uint8_t>(d.readsRs ? d.inst.rs()
                                                    : isa::numRegs),
                static_cast<std::uint8_t>(d.readsRt ? d.inst.rt()
                                                    : isa::numRegs),
                static_cast<std::uint8_t>(
                    d.writesDest ? static_cast<unsigned>(d.dest)
                                 : isa::numRegs + 1),
                static_cast<std::uint8_t>(
                    (d.isLoad || d.isStore ? 1u : 0u) |
                    (d.isControl ? 2u : 0u))};
        }

        // Taken bits: a version-2 control-only plane re-scatters
        // inside the fused pass below (its decode indexes are
        // bounds-checked there first); other forms expand up front.
        std::vector<std::uint64_t> ctl_bits;
        std::uint32_t ctl_nbits = 0;
        bool scatter_taken = false;
        if (!prepareTaken(bytes, seg, *buf, ctl_bits, ctl_nbits,
                          scatter_taken, why))
            return nullptr;
        if (scatter_taken)
            buf->taken_.assign((n + 63) / 64, 0);

        buf->srcRs_.resize(n);
        buf->srcRt_.resize(n);
        // Registers plus a zero slot (reads of "no operand" land
        // there) and a write sink (writes of "no destination").
        std::array<Word, isa::numRegs + 2> regs{};
        regs[isa::reg::sp] = isa::stackTop;
        std::size_t seen_mem_ops = 0;
        std::size_t ctl_cursor = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t idx = buf->decIdx_[i];
            if (idx >= text_size) {
                fail(why, "decode index out of range");
                return nullptr;
            }
            const ReplayFacts f = facts[idx];
            buf->srcRs_[i] = regs[f.rs];
            buf->srcRt_[i] = regs[f.rt];
            seen_mem_ops += f.flags & 1u;
            if (scatter_taken && (f.flags & 2u)) {
                if (ctl_cursor >= ctl_nbits) {
                    fail(why, "taken: fewer bits than control "
                              "instructions");
                    return nullptr;
                }
                buf->taken_[i / 64] |=
                    ((ctl_bits[ctl_cursor / 64] >> (ctl_cursor % 64)) &
                     1u)
                    << (i % 64);
                ++ctl_cursor;
            }
            regs[f.dest] = buf->result_v_[i];
        }
        if (seen_mem_ops != mem_ops) {
            fail(why, "memory-op count inconsistent with program");
            return nullptr;
        }
        if (scatter_taken && ctl_cursor != ctl_nbits) {
            fail(why, "taken: control-instruction count mismatch");
            return nullptr;
        }

        // Significance sidecars: version 2 persists the result and
        // memData tag planes (trusted: CRC-guarded and written
        // straight from the capture-time sidecars); the rs/rt tags
        // always rebuild from the replayed operand columns with the
        // batch kernels. Version-1 segments rebuild everything.
        if (seg.version >= 2) {
            const Segment::Column &col = seg.columns[ColSigTags];
            const std::uint8_t *p;
            std::size_t len;
            if (!columnPayload(bytes, col, p, len, why))
                return nullptr;
            if (col.rawBytes !=
                    static_cast<std::uint64_t>(n) + mem_ops ||
                len != (n + 1) / 2 + (mem_ops + 1) / 2) {
                fail(why, "sigTags: size mismatch");
                return nullptr;
            }
            std::vector<std::uint8_t> res_tags(n);
            if (!unpackNibbles(p, n, res_tags, why) ||
                !unpackNibbles(p + (n + 1) / 2, mem_ops, buf->sigMem_,
                               why)) {
                return nullptr;
            }
            buf->sigRegs_.resize(n);
            constexpr std::size_t chunk = 4096;
            sig::ByteMask rs[chunk], rt[chunk];
            for (std::size_t base = 0; base < n; base += chunk) {
                const std::size_t k = std::min(chunk, n - base);
                sig::classifyExt3Block(buf->srcRs_.data() + base, k, rs);
                sig::classifyExt3Block(buf->srcRt_.data() + base, k, rt);
                sig::packSigTagsBlock(rs, rt, res_tags.data() + base, k,
                                      buf->sigRegs_.data() + base);
            }
        } else {
            buf->fillSigSidecars();
        }

        buf->lastNextPc_ = seg.lastNextPc;
        buf->result_.reason =
            static_cast<cpu::StopReason>(seg.stopReason);
        buf->result_.exitCode = seg.exitCode;
        buf->result_.instructions = seg.instructions;
        if (buf->result_.reason != cpu::StopReason::Exited &&
            buf->result_.reason != cpu::StopReason::InstrLimit) {
            fail(why, "segment records a failed capture");
            return nullptr;
        }

        // Persisted SharedQuanta records (version >= 3): validated
        // like any column — CRC plus full structural decode — and
        // attached under their annex keys, so the first replay of a
        // matching configuration runs every pipeline as a
        // shared-quanta consumer instead of recomputing the front
        // half. Damage fails the whole load softly (recapture).
        for (const Segment::Annex &ax : seg.annexes) {
            const std::uint8_t *p = bytes + ax.payloadOffset;
            const std::size_t len =
                static_cast<std::size_t>(ax.encBytes);
            if (crc32(0, p, len) != ax.payloadCrc) {
                fail(why, "annex '" + ax.key + "': payload CRC");
                return nullptr;
            }
            std::shared_ptr<SharedQuanta> rec;
            if (!decodeQuanta(p, len, n, rec, why))
                return nullptr;
            buf->annexStoreIfAbsent(
                ax.key, std::static_pointer_cast<void>(rec),
                rec->bytes());
        }
        return buf;
    }

  private:
    static void
    encode32(const std::vector<std::uint32_t> &v,
             std::vector<std::uint8_t> &out, std::uint64_t &raw_bytes)
    {
        raw_bytes = 4 * static_cast<std::uint64_t>(v.size());
        encodeColumn32(v.data(), v.size(), out);
    }

    /**
     * Unpack @p n 4-bit tags from @p p, validating each is a legal
     * Ext3 pattern (low bit set) — a malformed plane fails soft like
     * any other codec damage.
     */
    static bool
    unpackNibbles(const std::uint8_t *p, std::size_t n,
                  std::vector<std::uint8_t> &out, std::string *why)
    {
        out.resize(n);
        std::uint8_t *dst = out.data();
        // Whole bytes carry two tags; legality (bit 0 of every legal
        // Ext3 pattern is set) folds into one accumulated mask check.
        std::uint8_t legal = 0x11;
        std::size_t i = 0;
        for (; i + 2 <= n; i += 2) {
            const std::uint8_t b = p[i >> 1];
            legal &= b;
            dst[i] = b & 0xF;
            dst[i + 1] = b >> 4;
        }
        if (legal != 0x11)
            return fail(why, "sigTags: illegal pattern");
        if (i < n) {
            // Odd count: low nibble is the last tag, high must be 0.
            const std::uint8_t b = p[i >> 1];
            if ((b & 0x1) == 0 || (b >> 4) != 0)
                return fail(why, "sigTags: trailing nibble garbage");
            dst[i] = b & 0xF;
        }
        return true;
    }

    /**
     * Decode the taken column as far as possible without walking the
     * stream. Version 1 and the version-2 full-plane submode expand
     * straight into @p buf.taken_; the control-only submode hands
     * its filtered bits back in @p ctl_bits/@p ctl_nbits with
     * @p scatter set — the caller re-scatters them inside its fused
     * (bounds-checked) decode-index pass.
     */
    static bool
    prepareTaken(const std::uint8_t *bytes, const Segment &seg,
                 cpu::TraceBuffer &buf,
                 std::vector<std::uint64_t> &ctl_bits,
                 std::uint32_t &ctl_nbits, bool &scatter,
                 std::string *why)
    {
        const std::size_t n = static_cast<std::size_t>(seg.instructions);
        const std::size_t words = (n + 63) / 64;
        const Segment::Column &col = seg.columns[ColTaken];
        scatter = false;
        if (seg.version < 2)
            return decodeCol64(bytes, col, words, buf.taken_, why);

        if (col.rawBytes != 8 * static_cast<std::uint64_t>(words))
            return fail(why, "taken: raw size mismatch");
        const std::uint8_t *p;
        std::size_t len;
        if (!columnPayload(bytes, col, p, len, why))
            return false;
        if (!checkTakenPayload(p, len, seg.instructions, why))
            return false;
        if (p[0] == kTakenFullPlane) {
            if (!decodeColumn64Raw(p + 1, len - 1, words, buf.taken_))
                return fail(why, "taken: malformed full plane");
            return true;
        }
        ctl_nbits = getU32(p + 1);
        if (!decodeColumn64Raw(p + 5, len - 5, (ctl_nbits + 63) / 64,
                               ctl_bits)) {
            return fail(why, "taken: malformed bit plane");
        }
        scatter = true;
        return true;
    }

    /** Append @p tags packed two per byte (value i low nibble, even i). */
    static void
    packNibbles(const std::vector<std::uint8_t> &tags,
                std::vector<std::uint8_t> &out)
    {
        const std::size_t n = tags.size();
        out.reserve(out.size() + (n + 1) / 2);
        std::size_t i = 0;
        for (; i + 2 <= n; i += 2)
            out.push_back(static_cast<std::uint8_t>(tags[i] |
                                                    (tags[i + 1] << 4)));
        if (i < n)
            out.push_back(tags[i]);
    }

    /**
     * Taken column, version-2 encoding: branch/jump outcome bits
     * exist only at control instructions, so store one bit per
     * *control* instruction (~6.7x smaller than the already-packed
     * full plane) and let the loader re-scatter them along the
     * decode-index stream. Verified while packing: if any non-control
     * position unexpectedly carries a set bit, fall back to the raw
     * full plane rather than lose it.
     */
    static void
    encodeTaken(const cpu::TraceBuffer &b, std::vector<std::uint8_t> &out)
    {
        const std::size_t n = b.decIdx_.size();
        std::vector<std::uint64_t> bits((n + 63) / 64 + 1, 0);
        std::size_t nbits = 0;
        bool fallback = false;
        for (std::size_t i = 0; i < n && !fallback; ++i) {
            const bool taken = (b.taken_[i / 64] >> (i % 64)) & 1;
            if (b.decoded_[b.decIdx_[i]].isControl) {
                if (taken)
                    bits[nbits / 64] |= std::uint64_t{1} << (nbits % 64);
                ++nbits;
            } else {
                fallback = taken;
            }
        }
        if (fallback) {
            out.push_back(kTakenFullPlane);
            encodeColumn64Raw(b.taken_.data(), b.taken_.size(), out);
            return;
        }
        out.push_back(kTakenControlOnly);
        putU32(out, static_cast<std::uint32_t>(nbits));
        encodeColumn64Raw(bits.data(), (nbits + 63) / 64, out);
    }
};

std::uint64_t
SegmentInfo::rawBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.rawBytes;
    return total;
}

std::uint64_t
SegmentInfo::encodedBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.encodedBytes;
    return total;
}

TraceStore::TraceStore(std::string dir, const StoreOptions &options)
    : dir_(std::move(dir)), readOnly_(options.readOnly),
      durableSaves_(options.durableSaves),
      transientRetries_(options.transientRetries),
      retryBackoffMs_(options.retryBackoffMs),
      env_(options.env != nullptr ? options.env : &Env::posix()),
      metrics_(options.registry != nullptr
                   ? *options.registry
                   : telemetry::Registry::process()),
      retriesMetric_(metrics_.counter("store.retries")),
      loadBytes_(metrics_.histogram("store.load_bytes",
                                    telemetry::Unit::Bytes)),
      saveBytes_(metrics_.histogram("store.save_bytes",
                                    telemetry::Unit::Bytes))
{
    if (readOnly_)
        return;
    EnvStatus st;
    for (unsigned attempt = 0;; ++attempt) {
        st = env_->createDirs(dir_);
        if (st.ok() || !st.transient() || attempt == transientRetries_)
            break;
        retries_.fetch_add(1, std::memory_order_relaxed);
        retriesMetric_.inc();
        backoff(attempt);
    }
    if (!st.ok()) {
        // Fail-soft: the store opens empty and unwritable rather than
        // killing the process — sessions degrade to capture-only.
        dirFailed_ = true;
        SC_WARN("cannot create trace store directory '", dir_, "' (",
                st.message, "); store degraded to capture-only");
    }
}

void
TraceStore::backoff(unsigned attempt) const
{
    if (retryBackoffMs_ == 0)
        return;
    // Waiting out a transient fault is invisible to a wall-clock
    // profile without this span — retry storms look like slow I/O.
    SIGCOMP_SPAN("store.retry_wait");
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::uint64_t{retryBackoffMs_}
                                  << std::min(attempt, 10u)));
}

std::unique_ptr<Env::FileView>
TraceStore::mapSegment(const std::string &path, EnvStatus *status) const
{
    EnvStatus st;
    for (unsigned attempt = 0;; ++attempt) {
        auto view = env_->loadFile(path, &st);
        if (view != nullptr) {
            if (status != nullptr)
                *status = EnvStatus::good();
            return view;
        }
        if (!st.transient() || attempt == transientRetries_)
            break;
        retries_.fetch_add(1, std::memory_order_relaxed);
        retriesMetric_.inc();
        backoff(attempt);
    }
    if (status != nullptr)
        *status = st;
    return nullptr;
}

std::string
TraceStore::segmentPath(const std::string &workload) const
{
    return dir_ + "/" + sanitize(workload) + ".sctrace";
}

std::uint32_t
TraceStore::programFingerprint(const isa::Program &program)
{
    std::uint32_t crc = 0;
    for (const isa::Instruction &inst : program.text()) {
        const Word raw = inst.raw();
        std::uint8_t le[4] = {static_cast<std::uint8_t>(raw),
                              static_cast<std::uint8_t>(raw >> 8),
                              static_cast<std::uint8_t>(raw >> 16),
                              static_cast<std::uint8_t>(raw >> 24)};
        crc = crc32(crc, le, 4);
    }
    const isa::DataSegment &data = program.data();
    if (!data.bytes.empty())
        crc = crc32(crc, data.bytes.data(), data.bytes.size());
    std::vector<std::uint8_t> tail;
    putU32(tail, data.base);
    putU32(tail, program.entry());
    crc = crc32(crc, tail.data(), tail.size());
    return crc;
}

std::shared_ptr<cpu::TraceBuffer>
TraceStore::load(const std::string &workload, const isa::Program &program,
                 DWord capture_limit, std::string *why, bool *legacy,
                 LoadFailure *failure) const
{
    SIGCOMP_SPAN("store.load");
    const auto classify = [&](LoadFailure f) {
        if (failure != nullptr)
            *failure = f;
    };
    classify(LoadFailure::None);
    if (legacy != nullptr)
        *legacy = false;
    EnvStatus st;
    const auto file = mapSegment(segmentPath(workload), &st);
    if (file == nullptr) {
        if (st.fault == EnvFault::NotFound) {
            classify(LoadFailure::Missing);
            fail(why, "no segment");
        } else {
            classify(LoadFailure::Io);
            fail(why, "read failed: " + st.message);
        }
        return nullptr;
    }
    loadBytes_.record(file->size());
    classify(LoadFailure::Corrupt); // until proven otherwise below
    Segment seg;
    if (!parseSegment(file->data(), file->size(), seg, why))
        return nullptr;
    if (seg.programCrc != programFingerprint(program)) {
        classify(LoadFailure::Stale);
        fail(why, "program fingerprint mismatch (workload changed)");
        return nullptr;
    }
    if (seg.captureLimit != capture_limit) {
        classify(LoadFailure::Stale);
        fail(why, "capture-limit mismatch");
        return nullptr;
    }
    auto buf = TraceSerializer::deserialize(file->data(), seg, program,
                                            why);
    // Only version 1 needs the write-through upgrade re-save: a
    // version-2 segment IS the current annex-less layout (annexes
    // are added separately by TraceCache::persistAnnexes when a
    // study first derives them).
    if (buf != nullptr) {
        classify(LoadFailure::None);
        if (legacy != nullptr)
            *legacy = seg.version < formatVersionNoAnnex;
    }
    return buf;
}

EnvFault
TraceStore::saveOnce(const std::string &path,
                     const std::vector<std::uint8_t> &bytes,
                     std::string *why) const
{
    // Unique per save, not just per process: two threads saving the
    // same workload (global + local cache, prewarm races) must not
    // truncate each other's in-progress temp file.
    static std::atomic<std::uint64_t> save_seq{0};
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid())) + "." +
        std::to_string(save_seq.fetch_add(1));
    EnvStatus st;
    auto file = env_->createFile(tmp, &st);
    if (file == nullptr) {
        fail(why, st.message);
        return st.fault;
    }
    st = file->append(bytes.data(), bytes.size());
    // Durable saves fsync the temp file BEFORE the rename: without
    // it, power loss can reorder the rename ahead of the data blocks
    // and leave a published segment full of zeros.
    if (st.ok() && durableSaves_)
        st = file->sync();
    const EnvStatus closed = file->close();
    if (st.ok())
        st = closed;
    if (!st.ok()) {
        env_->removeFile(tmp); // best effort; gc sweeps orphans
        fail(why, st.message);
        return st.fault;
    }
    // Atomic publish: readers never observe a partial segment.
    st = env_->renameFile(tmp, path);
    if (!st.ok()) {
        env_->removeFile(tmp);
        fail(why, "rename failed: " + st.message);
        return st.fault;
    }
    if (durableSaves_) {
        // The rename is already visible; a failed directory fsync
        // only weakens crash durability, so warn instead of failing
        // a save that readers can see.
        const EnvStatus dir_st = env_->syncDir(dir_);
        if (!dir_st.ok() && dir_st.fault != EnvFault::Crashed)
            SC_WARN("trace store: directory fsync failed (",
                    dir_st.message, ")");
    }
    return EnvFault::None;
}

bool
TraceStore::save(const std::string &workload,
                 const cpu::TraceBuffer &trace, DWord capture_limit,
                 std::string *why, EnvFault *fault,
                 const CancelToken *cancel) const
{
    SIGCOMP_SPAN("store.save");
    if (fault != nullptr)
        *fault = EnvFault::None;
    if (readOnly_) {
        if (fault != nullptr)
            *fault = EnvFault::ReadOnly;
        return fail(why, "store is read-only");
    }
    if (dirFailed_) {
        if (fault != nullptr)
            *fault = EnvFault::Other;
        return fail(why, "store directory unavailable");
    }

    const std::vector<std::uint8_t> bytes = TraceSerializer::serialize(
        trace, capture_limit, programFingerprint(trace.program()));
    saveBytes_.record(bytes.size());

    const std::string path = segmentPath(workload);
    std::string reason;
    EnvFault f = EnvFault::None;
    for (unsigned attempt = 0;; ++attempt) {
        f = saveOnce(path, bytes, &reason);
        if (f == EnvFault::None)
            return true;
        if (f != EnvFault::Transient || attempt == transientRetries_)
            break;
        // A cancel arriving while a transient fault is being retried
        // abandons the save: each attempt was atomic (complete
        // rename or ignorable temp), so the previously published
        // segment — if any — is still bit-identical on disk.
        if (cancelRequested(cancel)) {
            reason = "save cancelled after transient fault: " + reason;
            break;
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
        retriesMetric_.inc();
        backoff(attempt);
    }
    if (fault != nullptr)
        *fault = f;
    return fail(why, reason);
}

bool
TraceStore::quarantine(const std::string &workload,
                       std::string *quarantined_path) const
{
    if (readOnly_)
        return false;
    const std::string path = segmentPath(workload);
    if (!env_->fileExists(path))
        return false;
    // Unique destination: repeated corruption of the same workload
    // must not overwrite earlier evidence.
    static std::atomic<std::uint64_t> quar_seq{0};
    const std::string dest =
        path + ".quar." +
        std::to_string(static_cast<unsigned long>(::getpid())) + "." +
        std::to_string(quar_seq.fetch_add(1));
    EnvStatus st;
    for (unsigned attempt = 0;; ++attempt) {
        st = env_->renameFile(path, dest);
        if (st.ok() || !st.transient() || attempt == transientRetries_)
            break;
        retries_.fetch_add(1, std::memory_order_relaxed);
        retriesMetric_.inc();
        backoff(attempt);
    }
    if (!st.ok())
        return false;
    if (quarantined_path != nullptr)
        *quarantined_path = dest;
    return true;
}

std::vector<std::string>
TraceStore::quarantined() const
{
    std::vector<std::string> names;
    for (const std::string &name : env_->listDir(dir_, nullptr)) {
        if (name.find(".sctrace.quar.") != std::string::npos)
            names.push_back(name);
    }
    return names;
}

std::size_t
TraceStore::cleanOrphanTemps() const
{
    if (readOnly_)
        return 0;
    std::size_t removed = 0;
    for (const std::string &name : env_->listDir(dir_, nullptr)) {
        if (name.find(".sctrace.tmp.") == std::string::npos)
            continue;
        if (env_->removeFile(dir_ + "/" + name).ok())
            ++removed;
    }
    return removed;
}

bool
TraceStore::contains(const std::string &workload) const
{
    return env_->fileExists(segmentPath(workload));
}

bool
TraceStore::remove(const std::string &workload) const
{
    return env_->removeFile(segmentPath(workload)).ok();
}

std::vector<std::string>
TraceStore::list() const
{
    // listDir returns sorted names; temp (".sctrace.tmp.*") and
    // quarantine (".sctrace.quar.*") files don't END with the
    // extension, so only published segments qualify.
    static constexpr char ext[] = ".sctrace";
    static constexpr std::size_t ext_len = sizeof(ext) - 1;
    std::vector<std::string> names;
    for (const std::string &name : env_->listDir(dir_, nullptr)) {
        if (name.size() > ext_len && name.ends_with(ext))
            names.push_back(name.substr(0, name.size() - ext_len));
    }
    return names;
}

bool
TraceStore::info(const std::string &workload, SegmentInfo &out,
                 std::string *why) const
{
    const auto file = mapSegment(segmentPath(workload), nullptr);
    if (file == nullptr)
        return fail(why, "no segment");
    Segment seg;
    if (!parseSegment(file->data(), file->size(), seg, why))
        return false;

    out = SegmentInfo();
    out.workload = workload;
    out.path = segmentPath(workload);
    out.instructions = seg.instructions;
    out.fileBytes = file->size();
    out.captureLimit = seg.captureLimit;
    out.truncated = (seg.flags & kFlagTruncated) != 0;
    for (const Segment::Column &col : seg.columns) {
        out.columns.push_back(
            {columnName(col.id), col.rawBytes, col.encBytes});
    }
    for (const Segment::Annex &ax : seg.annexes)
        out.annexes.push_back({ax.key, ax.rawBytes, ax.encBytes});
    return true;
}

std::vector<std::string>
TraceStore::persistableAnnexKeys(const cpu::TraceBuffer &trace)
{
    return eligibleQuantaKeys(trace);
}

std::vector<std::string>
TraceStore::annexKeys(const std::string &workload) const
{
    const auto file = mapSegment(segmentPath(workload), nullptr);
    if (file == nullptr)
        return {};
    Segment seg;
    if (!parseSegment(file->data(), file->size(), seg, nullptr))
        return {};
    std::vector<std::string> keys;
    keys.reserve(seg.annexes.size());
    for (const Segment::Annex &ax : seg.annexes)
        keys.push_back(ax.key);
    return keys;
}

bool
TraceStore::verify(const std::string &workload,
                   const isa::Program *program, std::string *why) const
{
    const auto file = mapSegment(segmentPath(workload), nullptr);
    if (file == nullptr)
        return fail(why, "no segment");
    const std::uint8_t *bytes = file->data();
    Segment seg;
    if (!parseSegment(bytes, file->size(), seg, why))
        return false;
    if (program != nullptr) {
        if (seg.programCrc != programFingerprint(*program))
            return fail(why, "program fingerprint mismatch");
        return TraceSerializer::deserialize(bytes, seg, *program, why) !=
               nullptr;
    }
    // No program: still decode every payload so CRC and codec damage
    // is caught. The taken and sigTags columns need the program to
    // expand, so they get CRC plus structural framing checks here.
    const std::size_t n = static_cast<std::size_t>(seg.instructions);
    const std::size_t mem_ops = static_cast<std::size_t>(seg.memOps);
    std::vector<std::uint32_t> v32;
    std::vector<std::uint64_t> v64;
    if (!decodeCol32(bytes, seg.columns[ColDecIdx], n, v32, why) ||
        !decodeCol32(bytes, seg.columns[ColResult], n, v32, why) ||
        !decodeCol32(bytes, seg.columns[ColMemAddr], mem_ops, v32,
                     why) ||
        !decodeCol32(bytes, seg.columns[ColMemData], mem_ops, v32, why))
        return false;
    if (seg.version < 2) {
        return decodeCol64(bytes, seg.columns[ColTaken], (n + 63) / 64,
                           v64, why);
    }
    const std::uint8_t *p;
    std::size_t len;
    if (!columnPayload(bytes, seg.columns[ColTaken], p, len, why) ||
        !checkTakenPayload(p, len, seg.instructions, why))
        return false;
    if (!columnPayload(bytes, seg.columns[ColSigTags], p, len, why))
        return false;
    if (len != (n + 1) / 2 + (mem_ops + 1) / 2)
        return fail(why, "sigTags: size mismatch");
    // Annex payloads decode without a program: full CRC + structural
    // check, same strictness as the columns.
    for (const Segment::Annex &ax : seg.annexes) {
        const std::uint8_t *ap = bytes + ax.payloadOffset;
        const std::size_t alen = static_cast<std::size_t>(ax.encBytes);
        if (crc32(0, ap, alen) != ax.payloadCrc)
            return fail(why, "annex '" + ax.key + "': payload CRC");
        std::shared_ptr<pipeline::SharedQuanta> rec;
        if (!decodeQuanta(ap, alen, n, rec, why))
            return false;
    }
    return true;
}

std::uint64_t
StoreStats::rawBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.rawBytes;
    return total;
}

std::uint64_t
StoreStats::encodedBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.encodedBytes;
    return total;
}

StoreStats
aggregateStats(const TraceStore &store)
{
    StoreStats stats;
    for (const std::string &name : store.list()) {
        SegmentInfo info;
        if (!store.info(name, info, nullptr))
            continue;
        ++stats.segments;
        stats.instructions += info.instructions;
        stats.fileBytes += info.fileBytes;
        if (stats.columns.empty())
            stats.columns.resize(info.columns.size());
        for (std::size_t c = 0;
             c < info.columns.size() && c < stats.columns.size(); ++c) {
            stats.columns[c].name = info.columns[c].name;
            stats.columns[c].rawBytes += info.columns[c].rawBytes;
            stats.columns[c].encodedBytes += info.columns[c].encodedBytes;
        }
    }
    return stats;
}

void
writeColumnsJson(std::FILE *f, const std::vector<ColumnStat> &columns,
                 const char *indent)
{
    for (std::size_t c = 0; c < columns.size(); ++c) {
        std::fprintf(
            f,
            "%s{\"name\": \"%s\", \"raw_bytes\": %llu, "
            "\"encoded_bytes\": %llu, \"ratio\": %.3f}%s\n",
            indent, columns[c].name.c_str(),
            static_cast<unsigned long long>(columns[c].rawBytes),
            static_cast<unsigned long long>(columns[c].encodedBytes),
            columns[c].ratio(), c + 1 < columns.size() ? "," : "");
    }
}

} // namespace sigcomp::store
