#include "store/trace_store.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <unistd.h>

#include "common/crc32.h"
#include "common/logging.h"
#include "store/codec.h"

namespace sigcomp::store
{

namespace fs = std::filesystem;

namespace
{

constexpr std::uint32_t kMagic = 0x52544353u; // 'SCTR' little-endian
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kDirEntryBytes = 32;
constexpr std::uint32_t kFlagTruncated = 1u << 0;

/**
 * Column ids, fixed by the format (order = payload order). The
 * operand columns (srcRs/srcRt) are deliberately NOT stored: the
 * architectural register file is a pure function of the result
 * stream and the decoded read/write flags, so load-time
 * reconstruction (one register-replay pass) costs less than
 * decoding two more significance-packed columns and shrinks the
 * segments by ~40%.
 */
enum ColumnId : std::uint32_t
{
    ColDecIdx = 0,
    ColResult = 1,
    ColTaken = 2,
    ColMemAddr = 3,
    ColMemData = 4,
    NumColumns = 5,
};

const char *
columnName(std::uint32_t id)
{
    switch (id) {
    case ColDecIdx: return "decIdx";
    case ColResult: return "result";
    case ColTaken: return "taken";
    case ColMemAddr: return "memAddr";
    case ColMemData: return "memData";
    default: return "?";
    }
}

bool
fail(std::string *why, const std::string &reason)
{
    if (why != nullptr)
        *why = reason;
    return false;
}

/**
 * Workload names become file stems; escape anything non-portable.
 * Escaping alone would alias distinct names ("a/b" and "a b" both
 * become "a_b"), and aliased segments silently clobber each other
 * through the fingerprint check, so any escaped name also gets a
 * hash of the raw name appended.
 */
std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    bool escaped = name.empty();
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                        c == '_';
        out.push_back(ok ? c : '_');
        escaped |= !ok;
    }
    if (escaped) {
        char suffix[12];
        std::snprintf(suffix, sizeof(suffix), "-%08x",
                      crc32(0, name.data(), name.size()));
        out += suffix;
    }
    return out;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, 0, SEEK_SET);
    out.resize(static_cast<std::size_t>(size));
    const std::size_t got =
        size ? std::fread(out.data(), 1, out.size(), f) : 0;
    std::fclose(f);
    return got == out.size();
}

/** Parsed header + directory, offsets into the raw file bytes. */
struct Segment
{
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t captureLimit = 0;
    std::uint32_t programCrc = 0;
    std::uint32_t flags = 0;
    std::uint32_t exitCode = 0;
    std::uint32_t stopReason = 0;
    std::uint32_t lastNextPc = 0;

    struct Column
    {
        std::uint32_t id = 0;
        std::uint64_t rawBytes = 0;
        std::uint64_t encBytes = 0;
        std::uint32_t payloadCrc = 0;
        std::size_t payloadOffset = 0;
    };
    std::vector<Column> columns;
};

/**
 * Parse and CRC-check header + directory (not payload contents).
 * Fail-soft on every malformed input.
 */
bool
parseSegment(const std::vector<std::uint8_t> &bytes, Segment &seg,
             std::string *why)
{
    if (bytes.size() < kHeaderBytes)
        return fail(why, "file shorter than header");
    const std::uint8_t *h = bytes.data();
    if (getU32(h) != kMagic)
        return fail(why, "bad magic");
    const std::uint32_t version = getU32(h + 4);
    if (version != formatVersion)
        return fail(why, "format version " + std::to_string(version) +
                             " != " + std::to_string(formatVersion));
    if (crc32(0, h, 60) != getU32(h + 60))
        return fail(why, "header CRC mismatch");

    seg.instructions = getU64(h + 8);
    seg.memOps = getU64(h + 16);
    seg.captureLimit = getU64(h + 24);
    seg.programCrc = getU32(h + 32);
    seg.flags = getU32(h + 36);
    seg.exitCode = getU32(h + 40);
    seg.stopReason = getU32(h + 44);
    seg.lastNextPc = getU32(h + 48);
    const std::uint32_t column_count = getU32(h + 52);
    if (column_count != NumColumns)
        return fail(why, "unexpected column count");

    const std::size_t dir_bytes = column_count * kDirEntryBytes;
    if (bytes.size() < kHeaderBytes + dir_bytes + 4)
        return fail(why, "file shorter than column directory");
    const std::uint8_t *dir = h + kHeaderBytes;
    if (crc32(0, dir, dir_bytes) != getU32(dir + dir_bytes))
        return fail(why, "directory CRC mismatch");

    std::size_t offset = kHeaderBytes + dir_bytes + 4;
    seg.columns.resize(column_count);
    for (std::uint32_t c = 0; c < column_count; ++c) {
        const std::uint8_t *e = dir + c * kDirEntryBytes;
        Segment::Column &col = seg.columns[c];
        col.id = getU32(e);
        col.rawBytes = getU64(e + 8);
        col.encBytes = getU64(e + 16);
        col.payloadCrc = getU32(e + 24);
        col.payloadOffset = offset;
        if (col.id != c)
            return fail(why, "column directory out of order");
        if (col.encBytes > bytes.size() - offset)
            return fail(why, "column payload overruns file");
        offset += col.encBytes;
    }
    if (offset != bytes.size())
        return fail(why, "trailing bytes after payloads");
    return true;
}

/** CRC-check and decode one 32-bit column. */
bool
decodeCol32(const std::vector<std::uint8_t> &bytes,
            const Segment::Column &col, std::size_t n,
            std::vector<std::uint32_t> &out, std::string *why)
{
    const std::uint8_t *p = bytes.data() + col.payloadOffset;
    const std::size_t len = static_cast<std::size_t>(col.encBytes);
    if (col.rawBytes != 4 * static_cast<std::uint64_t>(n))
        return fail(why, std::string(columnName(col.id)) +
                             ": raw size mismatch");
    if (crc32(0, p, len) != col.payloadCrc)
        return fail(why,
                    std::string(columnName(col.id)) + ": payload CRC");
    if (!decodeColumn32(p, len, n, out))
        return fail(why, std::string(columnName(col.id)) +
                             ": malformed codec stream");
    return true;
}

bool
decodeCol64(const std::vector<std::uint8_t> &bytes,
            const Segment::Column &col, std::size_t n,
            std::vector<std::uint64_t> &out, std::string *why)
{
    const std::uint8_t *p = bytes.data() + col.payloadOffset;
    const std::size_t len = static_cast<std::size_t>(col.encBytes);
    if (col.rawBytes != 8 * static_cast<std::uint64_t>(n))
        return fail(why, std::string(columnName(col.id)) +
                             ": raw size mismatch");
    if (crc32(0, p, len) != col.payloadCrc)
        return fail(why,
                    std::string(columnName(col.id)) + ": payload CRC");
    if (!decodeColumn64Raw(p, len, n, out))
        return fail(why, std::string(columnName(col.id)) +
                             ": malformed raw stream");
    return true;
}

} // namespace

/**
 * The one class allowed to touch TraceBuffer's private columns
 * (befriended in cpu/trace_buffer.h): turns a buffer into segment
 * bytes and segment bytes back into a buffer.
 */
class TraceSerializer
{
  public:
    static std::vector<std::uint8_t>
    serialize(const cpu::TraceBuffer &b, DWord capture_limit,
              std::uint32_t program_crc)
    {
        const std::size_t n = b.decIdx_.size();

        // Encode every payload first so the directory can record
        // exact sizes and CRCs. srcRs_/srcRt_ are not written: the
        // loader rebuilds them from the result column (see ColumnId).
        std::vector<std::uint8_t> payloads[NumColumns];
        std::uint64_t raw_bytes[NumColumns];
        encode32(b.decIdx_, payloads[ColDecIdx], raw_bytes[ColDecIdx]);
        encode32(b.result_v_, payloads[ColResult], raw_bytes[ColResult]);
        encodeColumn64Raw(b.taken_.data(), b.taken_.size(),
                          payloads[ColTaken]);
        raw_bytes[ColTaken] = 8 * b.taken_.size();
        encode32(b.memAddr_, payloads[ColMemAddr], raw_bytes[ColMemAddr]);
        encode32(b.memData_, payloads[ColMemData], raw_bytes[ColMemData]);

        std::vector<std::uint8_t> out;
        out.reserve(kHeaderBytes + NumColumns * kDirEntryBytes + 4 +
                    payloads[0].size() + payloads[1].size() +
                    payloads[2].size() + payloads[3].size() +
                    payloads[4].size());

        // -- header ---------------------------------------------------
        putU32(out, kMagic);
        putU32(out, formatVersion);
        putU64(out, n);
        putU64(out, b.memAddr_.size());
        putU64(out, capture_limit);
        putU32(out, program_crc);
        putU32(out, b.truncated() ? kFlagTruncated : 0);
        putU32(out, b.result_.exitCode);
        putU32(out, static_cast<std::uint32_t>(b.result_.reason));
        putU32(out, b.lastNextPc_);
        putU32(out, NumColumns);
        putU32(out, 0); // reserved
        putU32(out, crc32(0, out.data(), 60));

        // -- column directory -----------------------------------------
        const std::size_t dir_start = out.size();
        for (std::uint32_t c = 0; c < NumColumns; ++c) {
            putU32(out, c);
            putU32(out, 0); // reserved
            putU64(out, raw_bytes[c]);
            putU64(out, payloads[c].size());
            putU32(out, crc32(0, payloads[c].data(), payloads[c].size()));
            putU32(out, 0); // reserved
        }
        putU32(out, crc32(0, out.data() + dir_start,
                          NumColumns * kDirEntryBytes));

        // -- payloads --------------------------------------------------
        for (const auto &payload : payloads)
            out.insert(out.end(), payload.begin(), payload.end());
        return out;
    }

    /**
     * Rebuild a TraceBuffer from parsed segment @p seg backed by
     * @p bytes, binding it to @p program. Fail-soft: nullptr + reason
     * on any inconsistency.
     */
    static std::shared_ptr<cpu::TraceBuffer>
    deserialize(const std::vector<std::uint8_t> &bytes, const Segment &seg,
                const isa::Program &program, std::string *why)
    {
        const std::size_t n = static_cast<std::size_t>(seg.instructions);
        const std::size_t mem_ops = static_cast<std::size_t>(seg.memOps);

        auto buf = std::make_shared<cpu::TraceBuffer>(
            cpu::TraceBuffer::makeForRebuild());
        buf->program_ = program;
        buf->decoded_.reserve(program.text().size());
        for (const isa::Instruction &inst : program.text())
            buf->decoded_.push_back(isa::decode(inst));

        if (!decodeCol32(bytes, seg.columns[ColDecIdx], n, buf->decIdx_,
                         why) ||
            !decodeCol32(bytes, seg.columns[ColResult], n,
                         buf->result_v_, why) ||
            !decodeCol64(bytes, seg.columns[ColTaken], (n + 63) / 64,
                         buf->taken_, why) ||
            !decodeCol32(bytes, seg.columns[ColMemAddr], mem_ops,
                         buf->memAddr_, why) ||
            !decodeCol32(bytes, seg.columns[ColMemData], mem_ops,
                         buf->memData_, why)) {
            return nullptr;
        }

        // One fused pass over the stream does three jobs:
        //  - bounds-check every decode index (replay gathers through
        //    them unchecked, so a wrong segment must die here,
        //    softly);
        //  - verify the memory-op count replay's load/store cursor
        //    will consume;
        //  - rebuild the srcRs/srcRt operand columns, which the
        //    format omits: replaying the result stream through an
        //    architectural register file reproduces them exactly
        //    (registers start at reset state — zeros, $sp at
        //    stackTop — and syscalls never write registers; the
        //    round-trip tests pin this bit-for-bit).
        const std::size_t text_size = buf->decoded_.size();
        buf->srcRs_.resize(n);
        buf->srcRt_.resize(n);
        std::array<Word, isa::numRegs + 1> regs{}; // last = write sink
        regs[isa::reg::sp] = isa::stackTop;
        std::size_t seen_mem_ops = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t idx = buf->decIdx_[i];
            if (idx >= text_size) {
                fail(why, "decode index out of range");
                return nullptr;
            }
            const isa::DecodedInstr &d = buf->decoded_[idx];
            buf->srcRs_[i] = d.readsRs ? regs[d.inst.rs()] : 0;
            buf->srcRt_[i] = d.readsRt ? regs[d.inst.rt()] : 0;
            seen_mem_ops += (d.isLoad || d.isStore) ? 1 : 0;
            regs[d.writesDest ? static_cast<unsigned>(d.dest)
                              : isa::numRegs] = buf->result_v_[i];
        }
        if (seen_mem_ops != mem_ops) {
            fail(why, "memory-op count inconsistent with program");
            return nullptr;
        }

        buf->lastNextPc_ = seg.lastNextPc;
        buf->result_.reason =
            static_cast<cpu::StopReason>(seg.stopReason);
        buf->result_.exitCode = seg.exitCode;
        buf->result_.instructions = seg.instructions;
        if (buf->result_.reason != cpu::StopReason::Exited &&
            buf->result_.reason != cpu::StopReason::InstrLimit) {
            fail(why, "segment records a failed capture");
            return nullptr;
        }
        return buf;
    }

  private:
    static void
    encode32(const std::vector<std::uint32_t> &v,
             std::vector<std::uint8_t> &out, std::uint64_t &raw_bytes)
    {
        raw_bytes = 4 * static_cast<std::uint64_t>(v.size());
        encodeColumn32(v.data(), v.size(), out);
    }
};

std::uint64_t
SegmentInfo::rawBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.rawBytes;
    return total;
}

std::uint64_t
SegmentInfo::encodedBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.encodedBytes;
    return total;
}

TraceStore::TraceStore(std::string dir, bool read_only)
    : dir_(std::move(dir)), readOnly_(read_only)
{
    if (!readOnly_) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
        SC_ASSERT(!ec, "cannot create trace store directory '", dir_,
                  "': ", ec.message());
    }
}

std::string
TraceStore::segmentPath(const std::string &workload) const
{
    return (fs::path(dir_) / (sanitize(workload) + ".sctrace")).string();
}

std::uint32_t
TraceStore::programFingerprint(const isa::Program &program)
{
    std::uint32_t crc = 0;
    for (const isa::Instruction &inst : program.text()) {
        const Word raw = inst.raw();
        std::uint8_t le[4] = {static_cast<std::uint8_t>(raw),
                              static_cast<std::uint8_t>(raw >> 8),
                              static_cast<std::uint8_t>(raw >> 16),
                              static_cast<std::uint8_t>(raw >> 24)};
        crc = crc32(crc, le, 4);
    }
    const isa::DataSegment &data = program.data();
    if (!data.bytes.empty())
        crc = crc32(crc, data.bytes.data(), data.bytes.size());
    std::vector<std::uint8_t> tail;
    putU32(tail, data.base);
    putU32(tail, program.entry());
    crc = crc32(crc, tail.data(), tail.size());
    return crc;
}

std::shared_ptr<cpu::TraceBuffer>
TraceStore::load(const std::string &workload, const isa::Program &program,
                 DWord capture_limit, std::string *why) const
{
    std::vector<std::uint8_t> bytes;
    if (!readFile(segmentPath(workload), bytes)) {
        fail(why, "no segment");
        return nullptr;
    }
    Segment seg;
    if (!parseSegment(bytes, seg, why))
        return nullptr;
    if (seg.programCrc != programFingerprint(program)) {
        fail(why, "program fingerprint mismatch (workload changed)");
        return nullptr;
    }
    if (seg.captureLimit != capture_limit) {
        fail(why, "capture-limit mismatch");
        return nullptr;
    }
    return TraceSerializer::deserialize(bytes, seg, program, why);
}

bool
TraceStore::save(const std::string &workload,
                 const cpu::TraceBuffer &trace, DWord capture_limit,
                 std::string *why) const
{
    if (readOnly_)
        return fail(why, "store is read-only");

    const std::vector<std::uint8_t> bytes = TraceSerializer::serialize(
        trace, capture_limit, programFingerprint(trace.program()));

    // Unique per save, not just per process: two threads saving the
    // same workload (global + local cache, prewarm races) must not
    // truncate each other's in-progress temp file.
    static std::atomic<std::uint64_t> save_seq{0};
    const std::string path = segmentPath(workload);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid())) + "." +
        std::to_string(save_seq.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return fail(why, "cannot open " + tmp);
    const std::size_t wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fclose(f) == 0;
    if (wrote != bytes.size() || !flushed) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return fail(why, "short write to " + tmp);
    }
    // Atomic publish: readers never observe a partial segment.
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return fail(why, "rename failed: " + ec.message());
    }
    return true;
}

bool
TraceStore::contains(const std::string &workload) const
{
    std::error_code ec;
    return fs::exists(segmentPath(workload), ec);
}

bool
TraceStore::remove(const std::string &workload) const
{
    std::error_code ec;
    return fs::remove(segmentPath(workload), ec);
}

std::vector<std::string>
TraceStore::list() const
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const fs::path &p = entry.path();
        if (p.extension() == ".sctrace")
            names.push_back(p.stem().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
TraceStore::info(const std::string &workload, SegmentInfo &out,
                 std::string *why) const
{
    std::vector<std::uint8_t> bytes;
    if (!readFile(segmentPath(workload), bytes))
        return fail(why, "no segment");
    Segment seg;
    if (!parseSegment(bytes, seg, why))
        return false;

    out = SegmentInfo();
    out.workload = workload;
    out.path = segmentPath(workload);
    out.instructions = seg.instructions;
    out.fileBytes = bytes.size();
    out.captureLimit = seg.captureLimit;
    out.truncated = (seg.flags & kFlagTruncated) != 0;
    for (const Segment::Column &col : seg.columns) {
        out.columns.push_back(
            {columnName(col.id), col.rawBytes, col.encBytes});
    }
    return true;
}

bool
TraceStore::verify(const std::string &workload,
                   const isa::Program *program, std::string *why) const
{
    std::vector<std::uint8_t> bytes;
    if (!readFile(segmentPath(workload), bytes))
        return fail(why, "no segment");
    Segment seg;
    if (!parseSegment(bytes, seg, why))
        return false;
    if (program != nullptr) {
        if (seg.programCrc != programFingerprint(*program))
            return fail(why, "program fingerprint mismatch");
        return TraceSerializer::deserialize(bytes, seg, *program, why) !=
               nullptr;
    }
    // No program: still decode every payload so CRC and codec damage
    // is caught.
    const std::size_t n = static_cast<std::size_t>(seg.instructions);
    const std::size_t mem_ops = static_cast<std::size_t>(seg.memOps);
    std::vector<std::uint32_t> v32;
    std::vector<std::uint64_t> v64;
    return decodeCol32(bytes, seg.columns[ColDecIdx], n, v32, why) &&
           decodeCol32(bytes, seg.columns[ColResult], n, v32, why) &&
           decodeCol64(bytes, seg.columns[ColTaken], (n + 63) / 64, v64,
                       why) &&
           decodeCol32(bytes, seg.columns[ColMemAddr], mem_ops, v32,
                       why) &&
           decodeCol32(bytes, seg.columns[ColMemData], mem_ops, v32, why);
}

std::uint64_t
StoreStats::rawBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.rawBytes;
    return total;
}

std::uint64_t
StoreStats::encodedBytes() const
{
    std::uint64_t total = 0;
    for (const ColumnStat &c : columns)
        total += c.encodedBytes;
    return total;
}

StoreStats
aggregateStats(const TraceStore &store)
{
    StoreStats stats;
    for (const std::string &name : store.list()) {
        SegmentInfo info;
        if (!store.info(name, info, nullptr))
            continue;
        ++stats.segments;
        stats.instructions += info.instructions;
        stats.fileBytes += info.fileBytes;
        if (stats.columns.empty())
            stats.columns.resize(info.columns.size());
        for (std::size_t c = 0;
             c < info.columns.size() && c < stats.columns.size(); ++c) {
            stats.columns[c].name = info.columns[c].name;
            stats.columns[c].rawBytes += info.columns[c].rawBytes;
            stats.columns[c].encodedBytes += info.columns[c].encodedBytes;
        }
    }
    return stats;
}

void
writeColumnsJson(std::FILE *f, const std::vector<ColumnStat> &columns,
                 const char *indent)
{
    for (std::size_t c = 0; c < columns.size(); ++c) {
        std::fprintf(
            f,
            "%s{\"name\": \"%s\", \"raw_bytes\": %llu, "
            "\"encoded_bytes\": %llu, \"ratio\": %.3f}%s\n",
            indent, columns[c].name.c_str(),
            static_cast<unsigned long long>(columns[c].rawBytes),
            static_cast<unsigned long long>(columns[c].encodedBytes),
            columns[c].ratio(), c + 1 < columns.size() ? "," : "");
    }
}

} // namespace sigcomp::store
