/**
 * @file
 * Bit-level activity accounting (paper sections 2.2-2.9).
 *
 * For every dynamic instruction we count the bits that switch in
 * each pipeline structure twice: once for the significance-
 * compressed design and once for the conventional 32-bit baseline
 * executing the same instruction. Percent savings per stage
 * (Tables 5 and 6 of the paper) fall out as
 * 1 - compressed/baseline.
 */

#ifndef SIGCOMP_PIPELINE_ACTIVITY_H_
#define SIGCOMP_PIPELINE_ACTIVITY_H_

#include "common/stats.h"
#include "common/types.h"

namespace sigcomp::pipeline
{

/** One structure's compressed/baseline bit counters. */
struct BitPair
{
    Count compressed = 0;
    Count baseline = 0;

    void
    add(Count c, Count b)
    {
        compressed += c;
        baseline += b;
    }

    /** Percent activity saving, the paper's table metric. */
    double saving() const { return percentSaving(compressed, baseline); }

    BitPair &
    operator+=(const BitPair &o)
    {
        compressed += o.compressed;
        baseline += o.baseline;
        return *this;
    }
};

/** Per-stage activity totals (one row of Table 5/6). */
struct ActivityTotals
{
    BitPair fetch;    ///< I-cache read + fill bits
    BitPair rfRead;   ///< register file read bits
    BitPair rfWrite;  ///< register file write bits
    BitPair alu;      ///< execute-stage datapath bits
    BitPair dcData;   ///< D-cache data array bits
    BitPair dcTag;    ///< D-cache tag array bits
    BitPair pcInc;    ///< PC increment bits
    BitPair latch;    ///< inter-stage latch bits

    ActivityTotals &
    operator+=(const ActivityTotals &o)
    {
        fetch += o.fetch;
        rfRead += o.rfRead;
        rfWrite += o.rfWrite;
        alu += o.alu;
        dcData += o.dcData;
        dcTag += o.dcTag;
        pcInc += o.pcInc;
        latch += o.latch;
        return *this;
    }
};

/** Control bits latched per pipeline boundary (both designs). */
constexpr unsigned latchCtrlBits = 12;

/**
 * Baseline 32-bit 5-stage latch widths per instruction:
 * IF/ID instr+pc, ID/EX two operands + immediate, EX/MEM result +
 * store data, MEM/WB result (plus control each).
 */
constexpr unsigned baselineLatchBits =
    (32 + 32) + (32 + 32 + 16) + (32 + 32) + 32 + 4 * latchCtrlBits;

/** Extension-bit write overhead of one I-cache fill word: 1 fetch
 * extension bit plus a small constant for the permute/recode logic. */
constexpr unsigned ifillPermuteBits = 6;

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_ACTIVITY_H_
