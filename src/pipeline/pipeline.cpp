#include "pipeline/pipeline.h"

#include <algorithm>

#include "common/logging.h"

namespace sigcomp::pipeline
{

using cpu::DynInstr;
using isa::Funct;
using isa::InstrClass;
using isa::Opcode;

InOrderPipeline::InOrderPipeline(std::string name, PipelineConfig config)
    : name_(std::move(name)), config_(std::move(config)),
      alu_(config_.encoding), hierarchy_(config_.memory),
      predictor_(config_.predictor, config_.phtEntries,
                 config_.btbEntries)
{
}

void
InOrderPipeline::bind(const isa::Program &program,
                      const mem::MainMemory &memory)
{
    program_ = &program;
    memory_ = &memory;

    // Memoise the compressed fetch width of every static
    // instruction: it is a pure function of the word under this
    // pipeline's compressor, and the hot path needs it for every
    // dynamic instance and every I-cache fill word.
    fetchWidth_.resize(program.text().size());
    for (std::size_t i = 0; i < fetchWidth_.size(); ++i) {
        fetchWidth_[i] = static_cast<std::uint8_t>(
            config_.compressor.fetchBytes(program.text()[i]));
    }
}

void
InOrderPipeline::bindReplay(const isa::Program &program)
{
    replayMemory_ = std::make_unique<mem::MainMemory>();
    const isa::DataSegment &data = program.data();
    if (!data.bytes.empty()) {
        replayMemory_->writeBlock(data.base, data.bytes.data(),
                                  data.bytes.size());
    }
    bind(program, *replayMemory_);
}

void
InOrderPipeline::applyStore(const cpu::DynInstr &di)
{
    switch (di.dec->memBytes) {
      case 1:
        replayMemory_->writeByte(di.memAddr,
                                 static_cast<Byte>(di.memData));
        break;
      case 2:
        replayMemory_->writeHalf(di.memAddr,
                                 static_cast<Half>(di.memData));
        break;
      default:
        replayMemory_->writeWord(di.memAddr, di.memData);
        break;
    }
}

namespace
{

/** Chunks of a value under an encoding. */
unsigned
chunksOf(Word v, sig::Encoding enc)
{
    return sig::significantBytesUnder(v, enc) / sig::chunkBytes(enc);
}

/** Chunks moved by a memory access of @p bytes with datum @p v. */
unsigned
memChunksOf(Word v, unsigned bytes, sig::Encoding enc)
{
    const unsigned cb = sig::chunkBytes(enc);
    if (bytes <= cb)
        return 1;
    // Sub-word accesses compress within their own width: a halfword
    // whose upper byte is a sign fill moves one byte.
    Word extended = v;
    if (bytes == 2)
        extended = signExtend(v, 16);
    const unsigned full = divCeil(bytes, cb);
    return std::min(full, chunksOf(extended, enc));
}

} // namespace

InstrQuanta
InOrderPipeline::computeQuanta(const DynInstr &di)
{
    const sig::Encoding enc = config_.encoding;
    const isa::DecodedInstr &dec = *di.dec;
    InstrQuanta q;

    // ---- fetch side -----------------------------------------------------
    q.fetchBytes = fetchWidthAt(di.pc);
    const mem::MemOutcome ifo = hierarchy_.instrFetch(di.pc);
    q.ifExtra = ifo.extraLatency;

    // ---- PC update ------------------------------------------------------
    const unsigned block_bits = 8 * sig::chunkBytes(enc);
    q.redirect = dec.isControl && di.nextPc != di.pc + 4;
    q.pcChangedBlocks = sig::changedBlocks(di.pc, di.nextPc, block_bits);
    if (!q.redirect) {
        const int hi =
            sig::highestChangedBlock(di.pc, di.nextPc, block_bits);
        q.pcRippleExtra = hi > 0 ? static_cast<unsigned>(hi) : 0;
    }

    // ---- register sources -----------------------------------------------
    if (dec.readsRs) {
        ++q.numSrcRegs;
        q.srcChunks = std::max(q.srcChunks, chunksOf(di.srcRs, enc));
    }
    if (dec.readsRt) {
        ++q.numSrcRegs;
        q.srcChunks = std::max(q.srcChunks, chunksOf(di.srcRt, enc));
    }

    // ---- ALU work ---------------------------------------------------------
    const Word imm_s = static_cast<Word>(di.inst().simm16());
    const Word imm_z = di.inst().imm16();
    q.usesAlu = true;
    switch (dec.cls) {
      case InstrClass::IntAlu:
        if (dec.format == isa::Format::R) {
            switch (di.inst().funct()) {
              case Funct::Add:
              case Funct::Addu:
                curAlu_ = alu_.add(di.srcRs, di.srcRt);
                break;
              case Funct::Sub:
              case Funct::Subu:
                curAlu_ = alu_.sub(di.srcRs, di.srcRt);
                break;
              case Funct::And:
                curAlu_ = alu_.logic(di.srcRs, di.srcRt,
                                     sig::LogicOp::And);
                break;
              case Funct::Or:
                curAlu_ = alu_.logic(di.srcRs, di.srcRt,
                                     sig::LogicOp::Or);
                break;
              case Funct::Xor:
                curAlu_ = alu_.logic(di.srcRs, di.srcRt,
                                     sig::LogicOp::Xor);
                break;
              case Funct::Nor:
                curAlu_ = alu_.logic(di.srcRs, di.srcRt,
                                     sig::LogicOp::Nor);
                break;
              case Funct::Slt:
                curAlu_ = alu_.slt(di.srcRs, di.srcRt, false);
                break;
              case Funct::Sltu:
                curAlu_ = alu_.slt(di.srcRs, di.srcRt, true);
                break;
              default: // mfhi/mflo/mthi/mtlo
                curAlu_ = alu_.passThrough(
                    dec.writesDest ? di.result : di.srcRs);
                break;
            }
        } else {
            switch (di.inst().opcode()) {
              case Opcode::Addi:
              case Opcode::Addiu:
                curAlu_ = alu_.add(di.srcRs, imm_s);
                break;
              case Opcode::Slti:
                curAlu_ = alu_.slt(di.srcRs, imm_s, false);
                break;
              case Opcode::Sltiu:
                curAlu_ = alu_.slt(di.srcRs, imm_s, true);
                break;
              case Opcode::Andi:
                curAlu_ = alu_.logic(di.srcRs, imm_z, sig::LogicOp::And);
                break;
              case Opcode::Ori:
                curAlu_ = alu_.logic(di.srcRs, imm_z, sig::LogicOp::Or);
                break;
              case Opcode::Xori:
                curAlu_ = alu_.logic(di.srcRs, imm_z, sig::LogicOp::Xor);
                break;
              default: // lui
                curAlu_ = alu_.passThrough(di.result);
                break;
            }
        }
        break;
      case InstrClass::Shift:
        curAlu_ = alu_.shift(di.srcRt, di.result);
        break;
      case InstrClass::Mult:
        curAlu_ = alu_.multDiv(di.srcRs, di.srcRt, 0);
        q.isMult = true;
        break;
      case InstrClass::Div:
        curAlu_ = alu_.multDiv(di.srcRs, di.srcRt, 0);
        q.isDiv = true;
        break;
      case InstrClass::Load:
      case InstrClass::Store:
        curAlu_ = alu_.add(di.srcRs, imm_s); // address generation
        break;
      case InstrClass::Branch:
        if (di.inst().opcode() == Opcode::Beq ||
            di.inst().opcode() == Opcode::Bne) {
            curAlu_ = alu_.sub(di.srcRs, di.srcRt);
        } else {
            curAlu_ = alu_.sub(di.srcRs, 0); // compare against zero
        }
        break;
      case InstrClass::Jump:
      case InstrClass::JumpReg:
      case InstrClass::Syscall:
      case InstrClass::Nop:
        curAlu_ = sig::AluReport{};
        curAlu_.workMask = 0;
        curAlu_.workBytes = 0;
        q.usesAlu = false;
        break;
    }
    q.exChunks = q.usesAlu ? std::max(1u, curAlu_.workChunks()) : 0;
    q.exWorkBytes = curAlu_.workBytes;

    // ---- memory ------------------------------------------------------------
    if (dec.isLoad || dec.isStore) {
        const mem::MemOutcome dout =
            hierarchy_.dataAccess(di.memAddr, dec.isStore);
        q.memExtra = dout.extraLatency;
        q.memAccessBytes = dec.memBytes;
        q.memChunks = memChunksOf(di.memData, dec.memBytes,
                                  config_.encoding);
        curLatchBase_ = accountActivity(di, q, curAlu_, ifo, dout, true);
    } else {
        curLatchBase_ = accountActivity(di, q, curAlu_, ifo,
                                        mem::MemOutcome{}, false);
    }
    addLatch(curLatchBase_, latchBoundaries(q));

    // ---- result ------------------------------------------------------------
    if (dec.writesDest && dec.dest != isa::reg::zero)
        q.resChunks = chunksOf(di.result, config_.encoding);

    return q;
}

Count
InOrderPipeline::accountActivity(const DynInstr &di, const InstrQuanta &q,
                                 const sig::AluReport &alu,
                                 const mem::MemOutcome &ifetch,
                                 const mem::MemOutcome &daccess,
                                 bool has_mem)
{
    const sig::Encoding enc = config_.encoding;
    const unsigned eb = sig::extensionBits(enc);
    const unsigned cb = sig::chunkBytes(enc);
    const isa::DecodedInstr &dec = *di.dec;

    // Fetch: 3-4 bytes plus the fetch extension bit vs a full word.
    activity_.fetch.add(8 * q.fetchBytes + 1, 32);
    if (ifetch.l1Fill && program_) {
        const unsigned line_words =
            hierarchy_.l1i().params().lineBytes / wordBytes;
        for (unsigned w = 0; w < line_words; ++w) {
            const Addr a =
                ifetch.fillLine + static_cast<Addr>(w * wordBytes);
            unsigned fb = 4;
            if (a >= program_->textStart() && a < program_->textEnd())
                fb = fetchWidthAt(a);
            activity_.fetch.add(8 * fb + 1 + ifillPermuteBits, 32);
        }
    }

    // Register file reads.
    if (dec.readsRs) {
        activity_.rfRead.add(
            8 * sig::significantBytesUnder(di.srcRs, enc) + eb, 32);
    }
    if (dec.readsRt) {
        activity_.rfRead.add(
            8 * sig::significantBytesUnder(di.srcRt, enc) + eb, 32);
    }

    // Register file write-back.
    unsigned res_bytes = 0;
    if (dec.writesDest && dec.dest != isa::reg::zero) {
        res_bytes = sig::significantBytesUnder(di.result, enc);
        activity_.rfWrite.add(8 * res_bytes + eb, 32);
    }

    // ALU datapath.
    if (q.usesAlu)
        activity_.alu.add(8 * alu.workBytes, 32);

    // Data cache.
    if (has_mem) {
        activity_.dcData.add(8 * q.memChunks * cb + eb, 32);
        activity_.dcTag.add(hierarchy_.l1d().tagBits(),
                            hierarchy_.l1d().tagBits());
        auto account_line = [&](Addr line) {
            const unsigned line_words =
                hierarchy_.l1d().params().lineBytes / wordBytes;
            for (unsigned w = 0; w < line_words; ++w) {
                const Word v = memory_ ? memory_->readWord(
                                             line + w * wordBytes)
                                       : 0;
                activity_.dcData.add(
                    8 * sig::significantBytesUnder(v, enc) + eb, 32);
            }
            activity_.dcTag.add(hierarchy_.l1d().tagBits(),
                                hierarchy_.l1d().tagBits());
        };
        if (daccess.l1Fill)
            account_line(daccess.fillLine);
        if (daccess.writeback)
            account_line(daccess.victimLine);
    }

    // PC increment.
    const unsigned block_bits = 8 * cb;
    activity_.pcInc.add(q.pcChangedBlocks * block_bits, 32);

    // Latches: instruction + PC, operands, result/store data, and
    // write-back value; returned unscaled — the caller applies the
    // design-specific boundary scaling (addLatch), which is the only
    // design-dependent piece of the whole accounting.
    Count latch_c = 8 * q.fetchBytes + 1 +
                    q.pcChangedBlocks * block_bits;
    if (dec.readsRs)
        latch_c += 8 * sig::significantBytesUnder(di.srcRs, enc) + eb;
    if (dec.readsRt)
        latch_c += 8 * sig::significantBytesUnder(di.srcRt, enc) + eb;
    latch_c += 2 * (8 * res_bytes + eb * (res_bytes ? 1 : 0));
    if (dec.isStore)
        latch_c += 8 * q.memChunks * cb + eb;
    return latch_c;
}

void
InOrderPipeline::schedule(const DynInstr &di, const InstrQuanta &q,
                          const TimingPlan &plan)
{
    const isa::DecodedInstr &dec = *di.dec;
    std::array<Cycle, maxStages> start{};
    std::array<Cycle, maxStages> end{};

    // Operand readiness (forwarding network).
    Cycle operand_ready = 0;
    if (dec.readsRs)
        operand_ready = std::max(operand_ready, regReady_[di.inst().rs()]);
    if (dec.readsRt)
        operand_ready = std::max(operand_ready, regReady_[di.inst().rt()]);
    if (dec.format == isa::Format::R &&
        (di.inst().funct() == Funct::Mfhi ||
         di.inst().funct() == Funct::Mflo)) {
        operand_ready = std::max(operand_ready, hiloReady_);
    }

    // Fetch.
    const Cycle if_structural = prevEnd_[0];
    start[0] = std::max(if_structural, redirectReady_);
    if (redirectReady_ > if_structural)
        stalls_.controlCycles += redirectReady_ - if_structural;
    stalls_.icacheMissCycles += q.ifExtra;
    end[0] = start[0] + plan.dur[0];

    for (unsigned s = 1; s < plan.numStages; ++s) {
        const Cycle flow = start[s - 1] + plan.lead[s - 1];
        const Cycle structural = prevEnd_[s];
        const Cycle hazard =
            (s == plan.consumeStage) ? operand_ready : 0;
        start[s] = std::max({flow, structural, hazard});
        if (structural > flow && structural >= hazard)
            stalls_.structuralCycles += structural - std::max(flow, hazard);
        else if (hazard > flow && hazard > structural)
            stalls_.dataHazardCycles += hazard - std::max(flow, structural);
        end[s] = start[s] + plan.dur[s];
    }
    stalls_.dcacheMissCycles += q.memExtra;

    // Publish scheduler state.
    for (unsigned s = 0; s < plan.numStages; ++s)
        prevEnd_[s] = end[s];
    for (unsigned s = plan.numStages; s < maxStages; ++s)
        prevEnd_[s] = 0;

    if (dec.writesDest && dec.dest != isa::reg::zero) {
        const unsigned rs =
            dec.isLoad ? plan.loadReadyStage : plan.readyStage;
        regReady_[dec.dest] = plan.streamForward
                                  ? start[rs] + plan.lead[rs]
                                  : end[rs];
    }
    if (dec.cls == InstrClass::Mult || dec.cls == InstrClass::Div)
        hiloReady_ = end[plan.readyStage];
    if (dec.isControl) {
        const bool correct = predictor_.predictAndUpdate(
            di.pc, di.taken, di.nextPc, dec.isCondBranch);
        // A correct prediction keeps fetch on the right path: no
        // redirect bubble. A wrong one redirects after resolution.
        if (!correct)
            redirectReady_ = end[plan.resolveStage];
    }

    lastCycle_ = std::max(lastCycle_, end[plan.numStages - 1]);
    ++instructions_;
    lastPc_ = di.pc;

    if (observer_)
        observer_(di, plan, start, end);
}

void
InOrderPipeline::retire(const DynInstr &di)
{
    SC_ASSERT(program_ != nullptr,
              "pipeline '", name_, "' not bound to a program");
    if (replayMemory_ && di.dec->isStore)
        applyStore(di);
    const InstrQuanta q = computeQuanta(di);
    const TimingPlan p = plan(di, q);
    SC_ASSERT(p.numStages >= 2 && p.numStages <= maxStages,
              "bad stage count");
    schedule(di, q, p);
}

void
InOrderPipeline::retireBlock(std::span<const cpu::DynInstr> block)
{
    SC_ASSERT(program_ != nullptr,
              "pipeline '", name_, "' not bound to a program");
    const bool apply_stores = replayMemory_ != nullptr;
    for (const DynInstr &di : block) {
        if (apply_stores && di.dec->isStore)
            applyStore(di);
        const InstrQuanta q = computeQuanta(di);
        const TimingPlan p = plan(di, q);
        SC_ASSERT(p.numStages >= 2 && p.numStages <= maxStages,
                  "bad stage count");
        schedule(di, q, p);
    }
}

PipelineResult
InOrderPipeline::result()
{
    PipelineResult r;
    r.name = name_;
    r.instructions = instructions_;
    r.cycles = lastCycle_;
    r.stalls = stalls_;
    r.activity = activity_;
    r.predictor = predictor_.stats();
    if (adoptedStats_.valid) {
        r.l1i = adoptedStats_.l1i;
        r.l1d = adoptedStats_.l1d;
        r.l2 = adoptedStats_.l2;
    } else {
        r.l1i = hierarchy_.l1i().stats();
        r.l1d = hierarchy_.l1d().stats();
        r.l2 = hierarchy_.l2().stats();
    }
    return r;
}

// ---- shared-quanta replay plumbing -----------------------------------

std::string
InOrderPipeline::quantaKey() const
{
    std::string key = "quanta:" + sig::encodingName(config_.encoding);
    auto num = [&](DWord v) { key += ':' + std::to_string(v); };
    auto cache = [&](const mem::CacheParams &c) {
        num(c.sizeBytes);
        num(c.assoc);
        num(c.lineBytes);
        num(c.hitLatency);
    };
    auto tlb = [&](const mem::TlbParams &t) {
        num(t.entries);
        num(t.assoc);
        num(t.pageBits);
        num(t.missPenalty);
    };
    cache(config_.memory.l1i);
    cache(config_.memory.l1d);
    cache(config_.memory.l2);
    num(config_.memory.memoryPenalty);
    tlb(config_.memory.itlb);
    tlb(config_.memory.dtlb);
    key += ":r";
    for (std::uint8_t f : config_.compressor.ranking())
        num(f);
    return key;
}

namespace
{

/** a - b per category (activity accumulates monotonically). */
ActivityTotals
activityDelta(const ActivityTotals &a, const ActivityTotals &b)
{
    auto sub = [](const BitPair &x, const BitPair &y) {
        BitPair d;
        d.compressed = x.compressed - y.compressed;
        d.baseline = x.baseline - y.baseline;
        return d;
    };
    ActivityTotals d;
    d.fetch = sub(a.fetch, b.fetch);
    d.rfRead = sub(a.rfRead, b.rfRead);
    d.rfWrite = sub(a.rfWrite, b.rfWrite);
    d.alu = sub(a.alu, b.alu);
    d.dcData = sub(a.dcData, b.dcData);
    d.dcTag = sub(a.dcTag, b.dcTag);
    d.pcInc = sub(a.pcInc, b.pcInc);
    d.latch = BitPair{}; // design-dependent: consumers compute it
    return d;
}

} // namespace

void
InOrderPipeline::retireBlockRecord(std::span<const cpu::DynInstr> block,
                                   SharedQuanta &rec)
{
    SC_ASSERT(program_ != nullptr,
              "pipeline '", name_, "' not bound to a program");
    const ActivityTotals before = activity_;
    const bool apply_stores = replayMemory_ != nullptr;
    for (const DynInstr &di : block) {
        if (apply_stores && di.dec->isStore)
            applyStore(di);
        const InstrQuanta q = computeQuanta(di);
        rec.q.push_back(SharedQuanta::pack(q, curLatchBase_));
        const TimingPlan p = plan(di, q);
        SC_ASSERT(p.numStages >= 2 && p.numStages <= maxStages,
                  "bad stage count");
        schedule(di, q, p);
    }
    rec.blockDelta.push_back(activityDelta(activity_, before));
}

void
InOrderPipeline::retireBlockShared(std::span<const cpu::DynInstr> block,
                                   const SharedQuanta &rec,
                                   std::size_t base,
                                   std::size_t block_index)
{
    // Generic fallback: same body as the designs' devirtualised
    // overrides, with the hooks dispatched virtually.
    retireBlockSharedWith(
        block, rec, base, block_index,
        [this](const cpu::DynInstr &di, const InstrQuanta &q) {
            return plan(di, q);
        },
        [this](const InstrQuanta &q) { return latchBoundaries(q); });
}

void
InOrderPipeline::adoptSharedStats(const SharedQuanta &rec)
{
    adoptedStats_.valid = true;
    adoptedStats_.l1i = rec.l1i;
    adoptedStats_.l1d = rec.l1d;
    adoptedStats_.l2 = rec.l2;
}

} // namespace sigcomp::pipeline
