#include "pipeline/pipeline.h"

#include <algorithm>

#include "common/logging.h"

namespace sigcomp::pipeline
{

using cpu::DynInstr;
using isa::Funct;
using isa::InstrClass;
using isa::Opcode;

InOrderPipeline::InOrderPipeline(std::string name, PipelineConfig config)
    : name_(std::move(name)), config_(std::move(config)),
      alu_(config_.encoding), hierarchy_(config_.memory),
      predictor_(config_.predictor, config_.phtEntries,
                 config_.btbEntries)
{
    // Per-Ext3-tag significance counts under this pipeline's
    // encoding. The Ext3 pattern of a word determines every
    // encoding's count exactly: Ext3 keeps the tagged bytes
    // (popcount), Ext2 keeps the low-order run up to the highest
    // tagged byte (bit_width), and Half1 keeps the upper halfword
    // exactly when either of its bytes is tagged. Entry 0 (no tag)
    // is never consulted — untagged operands classify on the spot.
    for (unsigned m = 1; m < 16; ++m) {
        unsigned bytes = 0;
        switch (config_.encoding) {
          case sig::Encoding::Ext3:
            bytes = static_cast<unsigned>(std::popcount(m));
            break;
          case sig::Encoding::Ext2:
            bytes = static_cast<unsigned>(std::bit_width(m));
            break;
          case sig::Encoding::Half1:
            bytes = (m & 0b1100u) ? 4 : 2;
            break;
        }
        tagBytes_[m] = static_cast<std::uint8_t>(bytes);
    }
}

void
InOrderPipeline::bind(const isa::Program &program,
                      const mem::MainMemory &memory)
{
    program_ = &program;
    memory_ = &memory;

    // Memoise the compressed fetch width of every static
    // instruction: it is a pure function of the word under this
    // pipeline's compressor, and the hot path needs it for every
    // dynamic instance and every I-cache fill word.
    fetchWidth_.resize(program.text().size());
    for (std::size_t i = 0; i < fetchWidth_.size(); ++i) {
        fetchWidth_[i] = static_cast<std::uint8_t>(
            config_.compressor.fetchBytes(program.text()[i]));
    }
}

void
InOrderPipeline::bindReplay(const isa::Program &program)
{
    replayMemory_ = std::make_unique<mem::MainMemory>();
    const isa::DataSegment &data = program.data();
    if (!data.bytes.empty()) {
        replayMemory_->writeBlock(data.base, data.bytes.data(),
                                  data.bytes.size());
    }
    bind(program, *replayMemory_);
}

void
InOrderPipeline::applyStore(const cpu::DynInstr &di)
{
    switch (di.dec->memBytes) {
      case 1:
        replayMemory_->writeByte(di.memAddr,
                                 static_cast<Byte>(di.memData));
        break;
      case 2:
        replayMemory_->writeHalf(di.memAddr,
                                 static_cast<Half>(di.memData));
        break;
      default:
        replayMemory_->writeWord(di.memAddr, di.memData);
        break;
    }
}


void
InOrderPipeline::retire(const DynInstr &di)
{
    SC_ASSERT(program_ != nullptr,
              "pipeline '", name_, "' not bound to a program");
    if (replayMemory_ && di.dec->isStore)
        applyStore(di);
    InstrQuanta q = computeQuanta(di);
    const unsigned res_chunks = q.resChunks;
    q.resChunks = 0;
    addLatch(curLatchBase_, latchBoundaries(q));
    q.resChunks = res_chunks;
    const TimingPlan p = plan(di, q);
    checkPlan(p);
    schedule(di, q, p);
}

void
InOrderPipeline::retireBlock(std::span<const cpu::DynInstr> block)
{
    SC_ASSERT(program_ != nullptr,
              "pipeline '", name_, "' not bound to a program");
    const bool apply_stores = replayMemory_ != nullptr;
    for (const DynInstr &di : block) {
        if (apply_stores && di.dec->isStore)
            applyStore(di);
        InstrQuanta q = computeQuanta(di);
        const unsigned res_chunks = q.resChunks;
        q.resChunks = 0;
        addLatch(curLatchBase_, latchBoundaries(q));
        q.resChunks = res_chunks;
        const TimingPlan p = plan(di, q);
        checkPlan(p);
        schedule(di, q, p);
    }
}

void
InOrderPipeline::panicBadTimingPlan()
{
    SC_PANIC("bad timing plan: stage count outside [2, ", maxStages,
             "] or a stage role index outside the plan's depth");
}

PipelineResult
InOrderPipeline::result()
{
    if (adoptedResult_) {
        PipelineResult r = *adoptedResult_;
        r.name = name_;
        return r;
    }
    PipelineResult r;
    r.name = name_;
    r.instructions = instructions_;
    r.cycles = lastCycle_;
    r.stalls = stalls_;
    r.activity = activity_;
    r.predictor = predictor_.stats();
    if (adoptedStats_.valid) {
        r.l1i = adoptedStats_.l1i;
        r.l1d = adoptedStats_.l1d;
        r.l2 = adoptedStats_.l2;
    } else {
        r.l1i = hierarchy_.l1i().stats();
        r.l1d = hierarchy_.l1d().stats();
        r.l2 = hierarchy_.l2().stats();
    }
    return r;
}

// ---- shared-quanta replay plumbing -----------------------------------

std::string
InOrderPipeline::quantaKey() const
{
    std::string key = "quanta:" + sig::encodingName(config_.encoding);
    auto num = [&](DWord v) { key += ':' + std::to_string(v); };
    auto cache = [&](const mem::CacheParams &c) {
        num(c.sizeBytes);
        num(c.assoc);
        num(c.lineBytes);
        num(c.hitLatency);
    };
    auto tlb = [&](const mem::TlbParams &t) {
        num(t.entries);
        num(t.assoc);
        num(t.pageBits);
        num(t.missPenalty);
    };
    cache(config_.memory.l1i);
    cache(config_.memory.l1d);
    cache(config_.memory.l2);
    num(config_.memory.memoryPenalty);
    tlb(config_.memory.itlb);
    tlb(config_.memory.dtlb);
    key += ":r";
    for (std::uint8_t f : config_.compressor.ranking())
        num(f);
    return key;
}

/** a - b per category (activity accumulates monotonically). */
ActivityTotals
InOrderPipeline::activityDelta(const ActivityTotals &a,
                               const ActivityTotals &b)
{
    auto sub = [](const BitPair &x, const BitPair &y) {
        BitPair d;
        d.compressed = x.compressed - y.compressed;
        d.baseline = x.baseline - y.baseline;
        return d;
    };
    ActivityTotals d;
    d.fetch = sub(a.fetch, b.fetch);
    d.rfRead = sub(a.rfRead, b.rfRead);
    d.rfWrite = sub(a.rfWrite, b.rfWrite);
    d.alu = sub(a.alu, b.alu);
    d.dcData = sub(a.dcData, b.dcData);
    d.dcTag = sub(a.dcTag, b.dcTag);
    d.pcInc = sub(a.pcInc, b.pcInc);
    d.latch = BitPair{}; // design-dependent: consumers compute it
    return d;
}

void
InOrderPipeline::retireBlockRecord(std::span<const cpu::DynInstr> block,
                                   SharedQuanta &rec)
{
    // Generic fallback: same body as the designs' devirtualised
    // overrides, with the hooks dispatched virtually.
    retireBlockRecordWith(
        block, rec,
        [this](const cpu::DynInstr &di, const InstrQuanta &q) {
            return plan(di, q);
        },
        [this](const InstrQuanta &q) { return latchBoundaries(q); });
}

void
InOrderPipeline::retireBlockShared(std::span<const cpu::DynInstr> block,
                                   const SharedQuanta &rec,
                                   std::size_t base,
                                   std::size_t block_index)
{
    // Generic fallback: same body as the designs' devirtualised
    // overrides, with the hooks dispatched virtually.
    retireBlockSharedWith(
        block, rec, base, block_index,
        [this](const cpu::DynInstr &di, const InstrQuanta &q) {
            return plan(di, q);
        },
        [this](const InstrQuanta &q) { return latchBoundaries(q); });
}

void
InOrderPipeline::adoptSharedStats(const SharedQuanta &rec)
{
    adoptedStats_.valid = true;
    adoptedStats_.l1i = rec.l1i;
    adoptedStats_.l1d = rec.l1d;
    adoptedStats_.l2 = rec.l2;
}

void
InOrderPipeline::adoptResult(const PipelineResult &r)
{
    adoptedResult_ = std::make_unique<PipelineResult>(r);
}

} // namespace sigcomp::pipeline
