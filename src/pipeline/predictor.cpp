#include "pipeline/predictor.h"

#include <bit>

namespace sigcomp::pipeline
{

std::string
predictorName(PredictorKind k)
{
    switch (k) {
      case PredictorKind::None:     return "none";
      case PredictorKind::NotTaken: return "not-taken";
      case PredictorKind::Bimodal:  return "bimodal";
    }
    return "?";
}

BranchPredictor::BranchPredictor(PredictorKind kind, unsigned pht_entries,
                                 unsigned btb_entries)
    : kind_(kind)
{
    SC_ASSERT(std::has_single_bit(pht_entries) &&
                  std::has_single_bit(btb_entries),
              "predictor tables must be powers of two");
    pht_.assign(pht_entries, 1); // weakly not-taken
    btb_.assign(btb_entries, BtbEntry{});
}

unsigned
BranchPredictor::phtIndex(Addr pc) const
{
    return (pc >> 2) & (static_cast<unsigned>(pht_.size()) - 1);
}

unsigned
BranchPredictor::btbIndex(Addr pc) const
{
    return (pc >> 2) & (static_cast<unsigned>(btb_.size()) - 1);
}

bool
BranchPredictor::predictAndUpdate(Addr pc, bool taken, Addr target,
                                  bool is_conditional)
{
    ++stats_.lookups;

    if (kind_ == PredictorKind::None) {
        ++stats_.mispredicts;
        return false;
    }

    // Direction.
    bool predict_taken = false;
    if (kind_ == PredictorKind::Bimodal) {
        std::uint8_t &ctr = pht_[phtIndex(pc)];
        predict_taken = is_conditional ? (ctr >= 2) : true;
        if (is_conditional) {
            if (taken && ctr < 3)
                ++ctr;
            else if (!taken && ctr > 0)
                --ctr;
        }
    } else {
        // Static not-taken (unconditional jumps still need the BTB).
        predict_taken = false;
    }

    // Target (only needed on the taken path).
    BtbEntry &be = btb_[btbIndex(pc)];
    const bool btb_hit = be.valid && be.tag == pc;
    const Addr btb_target = btb_hit ? be.target : 0;
    if (taken) {
        be.valid = true;
        be.tag = pc;
        be.target = target;
    }

    bool correct;
    if (!taken) {
        correct = !predict_taken;
    } else if (kind_ == PredictorKind::NotTaken) {
        correct = false;
    } else {
        correct = predict_taken && btb_hit && btb_target == target;
        if (predict_taken && (!btb_hit || btb_target != target))
            ++stats_.btbMisses;
    }

    if (!correct)
        ++stats_.mispredicts;
    return correct;
}

} // namespace sigcomp::pipeline
