/**
 * @file
 * Branch prediction (the paper's explicitly deferred future work,
 * section 3: "the trend is toward implementing branch prediction.
 * The implications of branch prediction will be the subject of
 * future study").
 *
 * A classic front-end: a direction predictor (static not-taken or a
 * bimodal table of 2-bit counters) plus a tagged branch target
 * buffer. The pipeline models consult it at fetch; a correct
 * prediction removes the resolve-wait bubble, a misprediction pays
 * the design's full resolve latency — which is exactly what makes
 * prediction matter *more* for the longer skewed pipelines.
 */

#ifndef SIGCOMP_PIPELINE_PREDICTOR_H_
#define SIGCOMP_PIPELINE_PREDICTOR_H_

#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/types.h"

namespace sigcomp::pipeline
{

/** Direction predictor flavours. */
enum class PredictorKind
{
    None,     ///< the paper's machine: stall on every control transfer
    NotTaken, ///< static: fall through, redirect on taken
    Bimodal,  ///< per-PC 2-bit saturating counters + BTB
};

/** Human-readable predictor name. */
std::string predictorName(PredictorKind k);

/** Predictor accuracy statistics. */
struct PredictorStats
{
    Count lookups = 0;
    Count mispredicts = 0;
    Count btbMisses = 0; ///< predicted/actual taken but target unknown

    double
    accuracy() const
    {
        return lookups ? 1.0 - static_cast<double>(mispredicts) /
                                   static_cast<double>(lookups)
                       : 0.0;
    }
};

/**
 * Combined direction predictor + BTB.
 *
 * Usage per control transfer: call predict() at fetch, then
 * update() with the architectural outcome. correctlyPredicted() is
 * folded into predict()'s return so the timing model needs one call.
 */
class BranchPredictor
{
  public:
    /**
     * @param kind flavour
     * @param pht_entries bimodal counter table size (power of two)
     * @param btb_entries target buffer size (power of two)
     */
    explicit BranchPredictor(PredictorKind kind,
                             unsigned pht_entries = 512,
                             unsigned btb_entries = 128);

    /**
     * Predict the control transfer at @p pc and learn from the
     * outcome in one step (trace-driven: the outcome is known).
     *
     * @param pc the branch/jump address
     * @param taken architectural direction (jumps: true)
     * @param target architectural target
     * @param is_conditional conditional branch (direction predicted)
     * @return true when fetch would have continued on the correct
     *         path with no redirect bubble
     */
    bool predictAndUpdate(Addr pc, bool taken, Addr target,
                          bool is_conditional);

    PredictorKind kind() const { return kind_; }
    const PredictorStats &stats() const { return stats_; }

  private:
    struct BtbEntry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
    };

    unsigned phtIndex(Addr pc) const;
    unsigned btbIndex(Addr pc) const;

    PredictorKind kind_;
    std::vector<std::uint8_t> pht_; ///< 2-bit counters
    std::vector<BtbEntry> btb_;
    PredictorStats stats_;
};

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_PREDICTOR_H_
