/**
 * @file
 * In-order pipeline timing framework.
 *
 * All of the paper's implementations are in-order pipelines whose
 * stages have *variable, data-dependent occupancy* (number of
 * significant chunks to fetch/read/operate/access/write). Timing
 * follows the classic reservation recurrence
 *
 *   start[i][s] = max(start[i][s-1] + lead[i][s-1],
 *                     end[i-1][s],            // in-order structural
 *                     hazard constraints)
 *   end[i][s]   = start[i][s] + dur[i][s]
 *
 * where lead < dur models *operand streaming*: a byte-serial stage
 * hands its first chunk downstream after one cycle while it keeps
 * producing the rest ("while the next byte is being accessed, the EX
 * unit can perform on the first data byte", section 4).
 *
 * Concrete designs override plan() to supply per-instruction stage
 * occupancies and the stage roles (where operands are consumed,
 * where branches resolve, where results become forwardable).
 */

#ifndef SIGCOMP_PIPELINE_PIPELINE_H_
#define SIGCOMP_PIPELINE_PIPELINE_H_

#include <array>
#include <functional>
#include <memory>
#include <string>

#include "cpu/trace.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/main_memory.h"
#include "pipeline/activity.h"
#include "pipeline/predictor.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/pc_increment.h"
#include "sigcomp/serial_alu.h"

namespace sigcomp::pipeline
{

/** Maximum pipeline depth across all implementations. */
constexpr unsigned maxStages = 8;

/** Shared configuration for all pipeline models. */
struct PipelineConfig
{
    sig::Encoding encoding = sig::Encoding::Ext3;
    mem::HierarchyParams memory{};
    /** Blocking EX occupancy of multiplies/divides (all designs). */
    unsigned multCycles = 4;
    unsigned divCycles = 12;
    /** Instruction compressor (funct ranking); profiled per suite. */
    sig::InstrCompressor compressor =
        sig::InstrCompressor::withDefaultRanking();
    /** Front-end branch prediction (paper future work; default off:
     * the paper's machines stall on every control transfer). */
    PredictorKind predictor = PredictorKind::None;
    unsigned phtEntries = 512;
    unsigned btbEntries = 128;
};

/**
 * Stall-cycle attribution (drives the section-5 bottleneck study).
 *
 * Counts are per-stage wait cycles: one instruction can wait at
 * several stages, and waits can overlap across instructions in
 * flight, so the total is an attribution measure — it can exceed
 * the end-to-end cycle difference from an ideal pipeline.
 */
struct StallBreakdown
{
    Count controlCycles = 0;    ///< fetch waiting on branch/jump resolve
    Count dataHazardCycles = 0; ///< operand (incl. load-use) waits
    Count structuralCycles = 0; ///< stage busy with previous instruction
    Count icacheMissCycles = 0; ///< extra fetch latency
    Count dcacheMissCycles = 0; ///< extra memory latency

    Count
    total() const
    {
        return controlCycles + dataHazardCycles + structuralCycles +
               icacheMissCycles + dcacheMissCycles;
    }
};

/** Final metrics of one pipeline run. */
struct PipelineResult
{
    std::string name;
    DWord instructions = 0;
    Cycle cycles = 0;
    StallBreakdown stalls;
    ActivityTotals activity;
    PredictorStats predictor;
    mem::CacheStats l1i;
    mem::CacheStats l1d;
    mem::CacheStats l2;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * Per-instruction, per-design stage schedule produced by plan().
 */
struct TimingPlan
{
    unsigned numStages = 5;
    /** Occupancy per stage (cycles), >= 1. */
    std::array<unsigned, maxStages> dur{};
    /** Cycles until the first chunk is available downstream. */
    std::array<unsigned, maxStages> lead{};
    /** Stage whose START waits for source operands. */
    unsigned consumeStage = 2;
    /** Control transfers redirect fetch after the END of this stage. */
    unsigned resolveStage = 2;
    /** ALU/other results are forwardable from this stage. */
    unsigned readyStage = 2;
    /** Load results are forwardable from this stage. */
    unsigned loadReadyStage = 3;
    /** Streamed forwarding: consumers may start one cycle after the
     * producing stage starts (chunkwise); otherwise they wait for its
     * end. */
    bool streamForward = false;
    /** Latch boundaries this instruction actually traverses. */
    unsigned latchBoundaries = 4;
};

/**
 * Encoding-dependent per-instruction quantities shared by the
 * concrete designs' plan() implementations and by the activity
 * accounting.
 */
struct InstrQuanta
{
    unsigned fetchBytes = 4;   ///< compressed instruction bytes (3/4)
    unsigned srcChunks = 0;    ///< max significant chunks over sources
    unsigned numSrcRegs = 0;
    unsigned exChunks = 0;     ///< ALU work chunks (0 = no ALU use)
    unsigned exWorkBytes = 0;  ///< ALU activity bytes
    unsigned memChunks = 0;    ///< data chunks moved by a load/store
    unsigned memAccessBytes = 0; ///< architectural access size
    unsigned resChunks = 0;    ///< significant chunks of the result
    bool usesAlu = false;
    bool isMult = false;
    bool isDiv = false;
    Cycle ifExtra = 0;         ///< I-side miss/TLB extra cycles
    Cycle memExtra = 0;        ///< D-side miss/TLB extra cycles
    unsigned pcChangedBlocks = 1;
    unsigned pcRippleExtra = 0; ///< serial PC increment overflow cycles
    bool redirect = false;      ///< control transfer
};

/**
 * Base class: drives the recurrence, the memory hierarchy, and the
 * activity accounting; concrete designs provide plan().
 *
 * Feed it a dynamic trace through the TraceSink interface (one
 * functional-simulation pass can fan out to many models), then call
 * result().
 */
class InOrderPipeline : public cpu::TraceSink
{
  public:
    InOrderPipeline(std::string name, PipelineConfig config);

    /**
     * Bind the program/memory image used to sample cache-fill
     * contents for activity accounting. Must be called before the
     * first retire(); the memory must be the one the functional core
     * mutates.
     */
    void bind(const isa::Program &program, const mem::MainMemory &memory);

    void retire(const cpu::DynInstr &di) override;

    /** Finalize and fetch results (idempotent). */
    PipelineResult result();

    const std::string &name() const { return name_; }
    const PipelineConfig &config() const { return config_; }

    /**
     * Per-instruction schedule callback: invoked after each
     * instruction is scheduled with its per-stage start/end cycles
     * (pipeline-diagram tooling and white-box tests).
     */
    using ScheduleObserver = std::function<void(
        const cpu::DynInstr &di, const TimingPlan &plan,
        const std::array<Cycle, maxStages> &start,
        const std::array<Cycle, maxStages> &end)>;

    void
    setScheduleObserver(ScheduleObserver obs)
    {
        observer_ = std::move(obs);
    }

  protected:
    /** Per-instruction schedule for this design. */
    virtual TimingPlan plan(const cpu::DynInstr &di,
                            const InstrQuanta &q) = 0;

    /** Latch boundaries this instruction traverses in this design. */
    virtual unsigned
    latchBoundaries(const InstrQuanta &q) const
    {
        (void)q;
        return 4;
    }

  private:
    InstrQuanta computeQuanta(const cpu::DynInstr &di);
    void accountActivity(const cpu::DynInstr &di, const InstrQuanta &q,
                         const sig::AluReport &alu,
                         const mem::MemOutcome &ifetch,
                         const mem::MemOutcome &daccess, bool has_mem);
    void schedule(const cpu::DynInstr &di, const InstrQuanta &q,
                  const TimingPlan &plan);

    std::string name_;
    PipelineConfig config_;
    sig::SerialAlu alu_;
    mem::MemoryHierarchy hierarchy_;
    BranchPredictor predictor_;
    ScheduleObserver observer_;

    const isa::Program *program_ = nullptr;
    const mem::MainMemory *memory_ = nullptr;

    // Scheduler state.
    std::array<Cycle, maxStages> prevEnd_{};
    std::array<Cycle, isa::numRegs> regReady_{};
    Cycle hiloReady_ = 0;
    Cycle redirectReady_ = 0;
    Cycle lastCycle_ = 0;
    Addr lastPc_ = 0;
    bool lastWasRedirect_ = false;
    bool first_ = true;

    DWord instructions_ = 0;
    StallBreakdown stalls_;
    ActivityTotals activity_;

    // Scratch for plan(): AluReport of the current instruction.
    sig::AluReport curAlu_;

    friend struct PipelineTestPeek;
};

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_PIPELINE_H_
