/**
 * @file
 * In-order pipeline timing framework.
 *
 * All of the paper's implementations are in-order pipelines whose
 * stages have *variable, data-dependent occupancy* (number of
 * significant chunks to fetch/read/operate/access/write). Timing
 * follows the classic reservation recurrence
 *
 *   start[i][s] = max(start[i][s-1] + lead[i][s-1],
 *                     end[i-1][s],            // in-order structural
 *                     hazard constraints)
 *   end[i][s]   = start[i][s] + dur[i][s]
 *
 * where lead < dur models *operand streaming*: a byte-serial stage
 * hands its first chunk downstream after one cycle while it keeps
 * producing the rest ("while the next byte is being accessed, the EX
 * unit can perform on the first data byte", section 4).
 *
 * Concrete designs override plan() to supply per-instruction stage
 * occupancies and the stage roles (where operands are consumed,
 * where branches resolve, where results become forwardable).
 */

#ifndef SIGCOMP_PIPELINE_PIPELINE_H_
#define SIGCOMP_PIPELINE_PIPELINE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "cpu/trace.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/main_memory.h"
#include "pipeline/activity.h"
#include "pipeline/predictor.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/pc_increment.h"
#include "sigcomp/serial_alu.h"

namespace sigcomp::pipeline
{

/** Maximum pipeline depth across all implementations. */
constexpr unsigned maxStages = 8;

/** Shared configuration for all pipeline models. */
struct PipelineConfig
{
    sig::Encoding encoding = sig::Encoding::Ext3;
    mem::HierarchyParams memory{};
    /** Blocking EX occupancy of multiplies/divides (all designs). */
    unsigned multCycles = 4;
    unsigned divCycles = 12;
    /** Instruction compressor (funct ranking); profiled per suite. */
    sig::InstrCompressor compressor =
        sig::InstrCompressor::withDefaultRanking();
    /** Front-end branch prediction (paper future work; default off:
     * the paper's machines stall on every control transfer). */
    PredictorKind predictor = PredictorKind::None;
    unsigned phtEntries = 512;
    unsigned btbEntries = 128;
};

/**
 * Stall-cycle attribution (drives the section-5 bottleneck study).
 *
 * Counts are per-stage wait cycles: one instruction can wait at
 * several stages, and waits can overlap across instructions in
 * flight, so the total is an attribution measure — it can exceed
 * the end-to-end cycle difference from an ideal pipeline.
 */
struct StallBreakdown
{
    Count controlCycles = 0;    ///< fetch waiting on branch/jump resolve
    Count dataHazardCycles = 0; ///< operand (incl. load-use) waits
    Count structuralCycles = 0; ///< stage busy with previous instruction
    Count icacheMissCycles = 0; ///< extra fetch latency
    Count dcacheMissCycles = 0; ///< extra memory latency

    Count
    total() const
    {
        return controlCycles + dataHazardCycles + structuralCycles +
               icacheMissCycles + dcacheMissCycles;
    }

    bool operator==(const StallBreakdown &) const = default;
};

/** Final metrics of one pipeline run. */
struct PipelineResult
{
    std::string name;
    DWord instructions = 0;
    Cycle cycles = 0;
    StallBreakdown stalls;
    ActivityTotals activity;
    PredictorStats predictor;
    mem::CacheStats l1i;
    mem::CacheStats l1d;
    mem::CacheStats l2;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * Per-instruction, per-design stage schedule produced by plan().
 */
struct TimingPlan
{
    unsigned numStages = 5;
    /** Occupancy per stage (cycles), >= 1. */
    std::array<unsigned, maxStages> dur{};
    /** Cycles until the first chunk is available downstream. */
    std::array<unsigned, maxStages> lead{};
    /** Stage whose START waits for source operands. */
    unsigned consumeStage = 2;
    /** Control transfers redirect fetch after the END of this stage. */
    unsigned resolveStage = 2;
    /** ALU/other results are forwardable from this stage. */
    unsigned readyStage = 2;
    /** Load results are forwardable from this stage. */
    unsigned loadReadyStage = 3;
    /** Streamed forwarding: consumers may start one cycle after the
     * producing stage starts (chunkwise); otherwise they wait for its
     * end. */
    bool streamForward = false;
    /** Latch boundaries this instruction actually traverses. */
    unsigned latchBoundaries = 4;
};

/**
 * Encoding-dependent per-instruction quantities shared by the
 * concrete designs' plan() implementations and by the activity
 * accounting.
 */
struct InstrQuanta
{
    unsigned fetchBytes = 4;   ///< compressed instruction bytes (3/4)
    unsigned srcChunks = 0;    ///< max significant chunks over sources
    unsigned numSrcRegs = 0;
    unsigned exChunks = 0;     ///< ALU work chunks (0 = no ALU use)
    unsigned exWorkBytes = 0;  ///< ALU activity bytes
    unsigned memChunks = 0;    ///< data chunks moved by a load/store
    unsigned memAccessBytes = 0; ///< architectural access size
    unsigned resChunks = 0;    ///< significant chunks of the result
    bool usesAlu = false;
    bool isMult = false;
    bool isDiv = false;
    Cycle ifExtra = 0;         ///< I-side miss/TLB extra cycles
    Cycle memExtra = 0;        ///< D-side miss/TLB extra cycles
    unsigned pcChangedBlocks = 1;
    unsigned pcRippleExtra = 0; ///< serial PC increment overflow cycles
    bool redirect = false;      ///< control transfer
};

/**
 * Design-independent per-instruction replay record.
 *
 * Everything computeQuanta() produces — hierarchy outcomes, ALU
 * occupancy, significance classification, the non-latch activity
 * accounting, and the pre-scaling latch bit count — depends only on
 * the trace, the encoding, the memory geometry, and the instruction
 * compressor, not on the concrete design. During trace replay the
 * first pipeline with a given configuration records this front half
 * once (retireBlockRecord), and every other same-configuration
 * pipeline — in this study or any later one, the record is cached
 * on the TraceBuffer — replays as a consumer (retireBlockShared)
 * that only runs the per-design back half: latch scaling, plan(),
 * and schedule(). A seven-design CPI study does the quanta work
 * once, not seven times.
 */
class SharedQuanta
{
  public:
    /** Packed InstrQuanta + latch base; 24 bytes per instruction. */
    struct Packed
    {
        std::uint8_t fetchBytes;
        std::uint8_t srcChunks;
        std::uint8_t numSrcRegs;
        std::uint8_t exChunks;
        std::uint8_t exWorkBytes;
        std::uint8_t memChunks;
        std::uint8_t memAccessBytes;
        std::uint8_t resChunks;
        /** usesAlu | isMult<<1 | isDiv<<2 | redirect<<3. */
        std::uint8_t flags;
        std::uint8_t pcChangedBlocks;
        std::uint8_t pcRippleExtra;
        std::uint8_t pad = 0;
        std::uint32_t ifExtra;
        std::uint32_t memExtra;
        std::uint32_t latchBase;
    };

    static Packed
    pack(const InstrQuanta &q, Count latch_base)
    {
        Packed p;
        p.fetchBytes = static_cast<std::uint8_t>(q.fetchBytes);
        p.srcChunks = static_cast<std::uint8_t>(q.srcChunks);
        p.numSrcRegs = static_cast<std::uint8_t>(q.numSrcRegs);
        p.exChunks = static_cast<std::uint8_t>(q.exChunks);
        p.exWorkBytes = static_cast<std::uint8_t>(q.exWorkBytes);
        p.memChunks = static_cast<std::uint8_t>(q.memChunks);
        p.memAccessBytes = static_cast<std::uint8_t>(q.memAccessBytes);
        p.resChunks = static_cast<std::uint8_t>(q.resChunks);
        p.flags = static_cast<std::uint8_t>(
            (q.usesAlu ? 1u : 0u) | (q.isMult ? 2u : 0u) |
            (q.isDiv ? 4u : 0u) | (q.redirect ? 8u : 0u));
        p.pcChangedBlocks = static_cast<std::uint8_t>(q.pcChangedBlocks);
        p.pcRippleExtra = static_cast<std::uint8_t>(q.pcRippleExtra);
        p.ifExtra = static_cast<std::uint32_t>(q.ifExtra);
        p.memExtra = static_cast<std::uint32_t>(q.memExtra);
        p.latchBase = static_cast<std::uint32_t>(latch_base);
        return p;
    }

    static InstrQuanta
    unpack(const Packed &p)
    {
        InstrQuanta q;
        q.fetchBytes = p.fetchBytes;
        q.srcChunks = p.srcChunks;
        q.numSrcRegs = p.numSrcRegs;
        q.exChunks = p.exChunks;
        q.exWorkBytes = p.exWorkBytes;
        q.memChunks = p.memChunks;
        q.memAccessBytes = p.memAccessBytes;
        q.resChunks = p.resChunks;
        q.usesAlu = (p.flags & 1u) != 0;
        q.isMult = (p.flags & 2u) != 0;
        q.isDiv = (p.flags & 4u) != 0;
        q.redirect = (p.flags & 8u) != 0;
        q.pcChangedBlocks = p.pcChangedBlocks;
        q.pcRippleExtra = p.pcRippleExtra;
        q.ifExtra = p.ifExtra;
        q.memExtra = p.memExtra;
        return q;
    }

    /** Per-instruction packed quanta, in stream order. */
    std::vector<Packed> q;
    /**
     * Shared (non-latch) activity delta per replay block; the latch
     * category stays zero — it is design-dependent and consumers
     * compute it per instruction.
     */
    std::vector<ActivityTotals> blockDelta;
    /** Final hierarchy statistics of the recording pass. */
    mem::CacheStats l1i, l1d, l2;

    /** Approximate heap footprint in bytes. */
    std::size_t
    bytes() const
    {
        return q.capacity() * sizeof(Packed) +
               blockDelta.capacity() * sizeof(ActivityTotals);
    }
};

/**
 * Base class: drives the recurrence, the memory hierarchy, and the
 * activity accounting; concrete designs provide plan().
 *
 * Feed it a dynamic trace through the TraceSink interface (one
 * functional-simulation pass can fan out to many models), then call
 * result().
 */
class InOrderPipeline : public cpu::TraceSink
{
  public:
    InOrderPipeline(std::string name, PipelineConfig config);

    /**
     * Bind the program/memory image used to sample cache-fill
     * contents for activity accounting. Must be called before the
     * first retire(); the memory must be the one the functional core
     * mutates.
     */
    void bind(const isa::Program &program, const mem::MainMemory &memory);

    /**
     * Bind for trace replay: the pipeline owns a private memory
     * image initialised from the program's data segment and applies
     * the trace's stores itself (capture applied them while
     * executing), so activity sampling on cache fills/writebacks
     * sees exactly the bytes the live run saw at that point in the
     * stream. Every replaying pipeline has its own image, so several
     * models can consume one shared trace concurrently.
     */
    void bindReplay(const isa::Program &program);

    void retire(const cpu::DynInstr &di) override;

    /**
     * Batched retirement: one virtual call per block instead of one
     * per instruction, with the scheduling loop kept monomorphic.
     * State after any block split is identical to per-instruction
     * retire() calls.
     */
    void retireBlock(std::span<const cpu::DynInstr> block) override;

    // ---- shared-quanta replay plumbing (used by replayPipelines) --

    /**
     * Fingerprint of everything the design-independent quanta depend
     * on: encoding, memory geometry, and compressor ranking. Two
     * pipelines with equal keys may share one SharedQuanta record.
     */
    std::string quantaKey() const;

    /**
     * Full retirement of @p block (identical to retireBlock()) that
     * additionally appends the design-independent front half to
     * @p rec: one Packed entry per instruction plus one shared
     * activity delta for the block.
     */
    void retireBlockRecord(std::span<const cpu::DynInstr> block,
                           SharedQuanta &rec);

    /**
     * Consumer retirement from a SharedQuanta record produced by a
     * same-key pipeline over the same block structure: skips
     * hierarchy/ALU/classification entirely and runs only latch
     * scaling, plan() and schedule(). @p base is the record index of
     * block[0], @p block_index the block's delta index. Final state
     * is bit-identical to the full path. Concrete designs override
     * this with the devirtualised retireBlockSharedAs() so plan()
     * inlines into the consumer loop.
     */
    virtual void retireBlockShared(std::span<const cpu::DynInstr> block,
                                   const SharedQuanta &rec,
                                   std::size_t base,
                                   std::size_t block_index);

    /**
     * Adopt the recording pass's hierarchy statistics so result()
     * reports real cache behaviour for shared-quanta consumers
     * (their own hierarchy was never driven).
     */
    void adoptSharedStats(const SharedQuanta &rec);

    /** This pipeline's hierarchy (recording side of shared stats). */
    const mem::MemoryHierarchy &hierarchy() const { return hierarchy_; }

    /** Finalize and fetch results (idempotent). */
    PipelineResult result();

    const std::string &name() const { return name_; }
    const PipelineConfig &config() const { return config_; }

    /**
     * Per-instruction schedule callback: invoked after each
     * instruction is scheduled with its per-stage start/end cycles
     * (pipeline-diagram tooling and white-box tests).
     */
    using ScheduleObserver = std::function<void(
        const cpu::DynInstr &di, const TimingPlan &plan,
        const std::array<Cycle, maxStages> &start,
        const std::array<Cycle, maxStages> &end)>;

    void
    setScheduleObserver(ScheduleObserver obs)
    {
        observer_ = std::move(obs);
    }

  protected:
    /** Per-instruction schedule for this design. */
    virtual TimingPlan plan(const cpu::DynInstr &di,
                            const InstrQuanta &q) = 0;

    /** Latch boundaries this instruction traverses in this design. */
    virtual unsigned
    latchBoundaries(const InstrQuanta &q) const
    {
        (void)q;
        return 4;
    }

    /**
     * The one shared-quanta consumer body, parameterised over how
     * plan()/latchBoundaries() are invoked: the virtual default
     * passes virtual-dispatch callables, SharedReplayModel passes
     * statically-bound ones so the hooks inline into the loop. Keeps
     * the load-bearing subtlety below in exactly one place.
     */
    template <typename PlanFn, typename LatchFn>
    void
    retireBlockSharedWith(std::span<const cpu::DynInstr> block,
                          const SharedQuanta &rec, std::size_t base,
                          std::size_t block_index, PlanFn &&plan_fn,
                          LatchFn &&latch_fn)
    {
        SC_ASSERT(program_ != nullptr,
                  "pipeline '", name_, "' not bound to a program");
        SC_ASSERT(base + block.size() <= rec.q.size() &&
                      block_index < rec.blockDelta.size(),
                  "shared quanta record does not cover this block");
        activity_ += rec.blockDelta[block_index];
        for (std::size_t j = 0; j < block.size(); ++j) {
            const cpu::DynInstr &di = block[j];
            const SharedQuanta::Packed &p = rec.q[base + j];
            InstrQuanta q = SharedQuanta::unpack(p);

            // Match the canonical path: latchBoundaries() runs
            // before resChunks is filled in (see computeQuanta).
            const unsigned res_chunks = q.resChunks;
            q.resChunks = 0;
            addLatch(p.latchBase, latch_fn(q));
            q.resChunks = res_chunks;

            const TimingPlan tp = plan_fn(di, q);
            schedule(di, q, tp);
        }
    }

  private:
    InstrQuanta computeQuanta(const cpu::DynInstr &di);

    /**
     * Account every activity category except latches; returns the
     * instruction's latch bit count before control/boundary scaling
     * (the design-independent part of the latch formula).
     */
    Count accountActivity(const cpu::DynInstr &di, const InstrQuanta &q,
                          const sig::AluReport &alu,
                          const mem::MemOutcome &ifetch,
                          const mem::MemOutcome &daccess, bool has_mem);

    /** Scale and account the latch activity of one instruction. */
    void
    addLatch(Count base, unsigned boundaries)
    {
        Count latch_c = base + latchCtrlBits * boundaries;
        latch_c = latch_c * boundaries / 4;
        activity_.latch.add(latch_c, baselineLatchBits);
    }

    void schedule(const cpu::DynInstr &di, const InstrQuanta &q,
                  const TimingPlan &plan);

    /** Re-apply one trace store to the replay memory image. */
    void applyStore(const cpu::DynInstr &di);

    /** Compressed fetch width of the text word at @p addr (memo). */
    unsigned
    fetchWidthAt(Addr addr) const
    {
        return fetchWidth_[(addr - program_->textStart()) / wordBytes];
    }

    std::string name_;
    PipelineConfig config_;
    sig::SerialAlu alu_;
    mem::MemoryHierarchy hierarchy_;
    BranchPredictor predictor_;
    ScheduleObserver observer_;

    const isa::Program *program_ = nullptr;
    const mem::MainMemory *memory_ = nullptr;
    /** Owned evolving memory image when bound via bindReplay(). */
    std::unique_ptr<mem::MainMemory> replayMemory_;
    /**
     * Per-static-instruction compressed fetch width, memoised at
     * bind time (fetchBytes() permutes/recodes the whole word, far
     * too much work to redo for every dynamic instance).
     */
    std::vector<std::uint8_t> fetchWidth_;

    // Scheduler state.
    std::array<Cycle, maxStages> prevEnd_{};
    std::array<Cycle, isa::numRegs> regReady_{};
    Cycle hiloReady_ = 0;
    Cycle redirectReady_ = 0;
    Cycle lastCycle_ = 0;
    Addr lastPc_ = 0;
    bool lastWasRedirect_ = false;

    DWord instructions_ = 0;
    StallBreakdown stalls_;
    ActivityTotals activity_;

    // Scratch for plan(): AluReport of the current instruction.
    sig::AluReport curAlu_;
    // Scratch: latch base bits of the current instruction.
    Count curLatchBase_ = 0;
    // Hierarchy stats adopted from a SharedQuanta record, if any.
    struct AdoptedStats
    {
        bool valid = false;
        mem::CacheStats l1i, l1d, l2;
    };
    AdoptedStats adoptedStats_;

    friend struct PipelineTestPeek;
};

/**
 * CRTP intermediary between InOrderPipeline and the concrete
 * designs: supplies the devirtualised shared-quanta consumer
 * override exactly once. D's plan()/latchBoundaries() bind
 * statically inside retireBlockSharedWith(), so they inline into the
 * consumer loop; designs stay `class X : public SharedReplayModel<X>`
 * with a `friend SharedReplayModel<X>` so the hooks remain
 * protected.
 */
template <typename D>
class SharedReplayModel : public InOrderPipeline
{
  public:
    using InOrderPipeline::InOrderPipeline;

    void
    retireBlockShared(std::span<const cpu::DynInstr> block,
                      const SharedQuanta &rec, std::size_t base,
                      std::size_t block_index) override
    {
        D *self = static_cast<D *>(this);
        retireBlockSharedWith(
            block, rec, base, block_index,
            [self](const cpu::DynInstr &di, const InstrQuanta &q) {
                return self->D::plan(di, q);
            },
            [self](const InstrQuanta &q) {
                return self->D::latchBoundaries(q);
            });
    }
};

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_PIPELINE_H_
