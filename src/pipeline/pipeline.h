/**
 * @file
 * In-order pipeline timing framework.
 *
 * All of the paper's implementations are in-order pipelines whose
 * stages have *variable, data-dependent occupancy* (number of
 * significant chunks to fetch/read/operate/access/write). Timing
 * follows the classic reservation recurrence
 *
 *   start[i][s] = max(start[i][s-1] + lead[i][s-1],
 *                     end[i-1][s],            // in-order structural
 *                     hazard constraints)
 *   end[i][s]   = start[i][s] + dur[i][s]
 *
 * where lead < dur models *operand streaming*: a byte-serial stage
 * hands its first chunk downstream after one cycle while it keeps
 * producing the rest ("while the next byte is being accessed, the EX
 * unit can perform on the first data byte", section 4).
 *
 * Concrete designs override plan() to supply per-instruction stage
 * occupancies and the stage roles (where operands are consumed,
 * where branches resolve, where results become forwardable).
 */

#ifndef SIGCOMP_PIPELINE_PIPELINE_H_
#define SIGCOMP_PIPELINE_PIPELINE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "cpu/trace.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "mem/main_memory.h"
#include "pipeline/activity.h"
#include "pipeline/predictor.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/pc_increment.h"
#include "sigcomp/serial_alu.h"

namespace sigcomp::pipeline
{

/** Maximum pipeline depth across all implementations. */
constexpr unsigned maxStages = 8;

/** Shared configuration for all pipeline models. */
struct PipelineConfig
{
    sig::Encoding encoding = sig::Encoding::Ext3;
    mem::HierarchyParams memory{};
    /** Blocking EX occupancy of multiplies/divides (all designs). */
    unsigned multCycles = 4;
    unsigned divCycles = 12;
    /** Instruction compressor (funct ranking); profiled per suite. */
    sig::InstrCompressor compressor =
        sig::InstrCompressor::withDefaultRanking();
    /** Front-end branch prediction (paper future work; default off:
     * the paper's machines stall on every control transfer). */
    PredictorKind predictor = PredictorKind::None;
    unsigned phtEntries = 512;
    unsigned btbEntries = 128;
};

/**
 * Stall-cycle attribution (drives the section-5 bottleneck study).
 *
 * Counts are per-stage wait cycles: one instruction can wait at
 * several stages, and waits can overlap across instructions in
 * flight, so the total is an attribution measure — it can exceed
 * the end-to-end cycle difference from an ideal pipeline.
 */
struct StallBreakdown
{
    Count controlCycles = 0;    ///< fetch waiting on branch/jump resolve
    Count dataHazardCycles = 0; ///< operand (incl. load-use) waits
    Count structuralCycles = 0; ///< stage busy with previous instruction
    Count icacheMissCycles = 0; ///< extra fetch latency
    Count dcacheMissCycles = 0; ///< extra memory latency

    Count
    total() const
    {
        return controlCycles + dataHazardCycles + structuralCycles +
               icacheMissCycles + dcacheMissCycles;
    }

    bool operator==(const StallBreakdown &) const = default;
};

/** Final metrics of one pipeline run. */
struct PipelineResult
{
    std::string name;
    DWord instructions = 0;
    Cycle cycles = 0;
    StallBreakdown stalls;
    ActivityTotals activity;
    PredictorStats predictor;
    mem::CacheStats l1i;
    mem::CacheStats l1d;
    mem::CacheStats l2;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * Per-instruction, per-design stage schedule produced by plan().
 */
struct TimingPlan
{
    unsigned numStages = 5;
    /** Occupancy per stage (cycles), >= 1. */
    std::array<unsigned, maxStages> dur{};
    /** Cycles until the first chunk is available downstream. */
    std::array<unsigned, maxStages> lead{};
    /** Stage whose START waits for source operands. */
    unsigned consumeStage = 2;
    /** Control transfers redirect fetch after the END of this stage. */
    unsigned resolveStage = 2;
    /** ALU/other results are forwardable from this stage. */
    unsigned readyStage = 2;
    /** Load results are forwardable from this stage. */
    unsigned loadReadyStage = 3;
    /** Streamed forwarding: consumers may start one cycle after the
     * producing stage starts (chunkwise); otherwise they wait for its
     * end. */
    bool streamForward = false;
    /** Latch boundaries this instruction actually traverses. */
    unsigned latchBoundaries = 4;
};

/**
 * Encoding-dependent per-instruction quantities shared by the
 * concrete designs' plan() implementations and by the activity
 * accounting.
 */
struct InstrQuanta
{
    unsigned fetchBytes = 4;   ///< compressed instruction bytes (3/4)
    unsigned srcChunks = 0;    ///< max significant chunks over sources
    unsigned numSrcRegs = 0;
    unsigned exChunks = 0;     ///< ALU work chunks (0 = no ALU use)
    unsigned exWorkBytes = 0;  ///< ALU activity bytes
    unsigned memChunks = 0;    ///< data chunks moved by a load/store
    unsigned memAccessBytes = 0; ///< architectural access size
    unsigned resChunks = 0;    ///< significant chunks of the result
    bool usesAlu = false;
    bool isMult = false;
    bool isDiv = false;
    Cycle ifExtra = 0;         ///< I-side miss/TLB extra cycles
    Cycle memExtra = 0;        ///< D-side miss/TLB extra cycles
    unsigned pcChangedBlocks = 1;
    unsigned pcRippleExtra = 0; ///< serial PC increment overflow cycles
    bool redirect = false;      ///< control transfer
};

/**
 * Design-independent per-instruction replay record.
 *
 * Everything computeQuanta() produces — hierarchy outcomes, ALU
 * occupancy, significance classification, the non-latch activity
 * accounting, and the pre-scaling latch bit count — depends only on
 * the trace, the encoding, the memory geometry, and the instruction
 * compressor, not on the concrete design. During trace replay the
 * first pipeline with a given configuration records this front half
 * once (retireBlockRecord), and every other same-configuration
 * pipeline — in this study or any later one, the record is cached
 * on the TraceBuffer — replays as a consumer (retireBlockShared)
 * that only runs the per-design back half: latch scaling, plan(),
 * and schedule(). A seven-design CPI study does the quanta work
 * once, not seven times.
 */
class SharedQuanta
{
  public:
    /** Packed InstrQuanta + latch base; 24 bytes per instruction. */
    struct Packed
    {
        std::uint8_t fetchBytes;
        std::uint8_t srcChunks;
        std::uint8_t numSrcRegs;
        std::uint8_t exChunks;
        std::uint8_t exWorkBytes;
        std::uint8_t memChunks;
        std::uint8_t memAccessBytes;
        std::uint8_t resChunks;
        /** usesAlu | isMult<<1 | isDiv<<2 | redirect<<3. */
        std::uint8_t flags;
        std::uint8_t pcChangedBlocks;
        std::uint8_t pcRippleExtra;
        std::uint8_t pad = 0;
        std::uint32_t ifExtra;
        std::uint32_t memExtra;
        std::uint32_t latchBase;
    };

    static Packed
    pack(const InstrQuanta &q, Count latch_base)
    {
        Packed p;
        p.fetchBytes = static_cast<std::uint8_t>(q.fetchBytes);
        p.srcChunks = static_cast<std::uint8_t>(q.srcChunks);
        p.numSrcRegs = static_cast<std::uint8_t>(q.numSrcRegs);
        p.exChunks = static_cast<std::uint8_t>(q.exChunks);
        p.exWorkBytes = static_cast<std::uint8_t>(q.exWorkBytes);
        p.memChunks = static_cast<std::uint8_t>(q.memChunks);
        p.memAccessBytes = static_cast<std::uint8_t>(q.memAccessBytes);
        p.resChunks = static_cast<std::uint8_t>(q.resChunks);
        p.flags = static_cast<std::uint8_t>(
            (q.usesAlu ? 1u : 0u) | (q.isMult ? 2u : 0u) |
            (q.isDiv ? 4u : 0u) | (q.redirect ? 8u : 0u));
        p.pcChangedBlocks = static_cast<std::uint8_t>(q.pcChangedBlocks);
        p.pcRippleExtra = static_cast<std::uint8_t>(q.pcRippleExtra);
        p.ifExtra = static_cast<std::uint32_t>(q.ifExtra);
        p.memExtra = static_cast<std::uint32_t>(q.memExtra);
        p.latchBase = static_cast<std::uint32_t>(latch_base);
        return p;
    }

    static InstrQuanta
    unpack(const Packed &p)
    {
        InstrQuanta q;
        q.fetchBytes = p.fetchBytes;
        q.srcChunks = p.srcChunks;
        q.numSrcRegs = p.numSrcRegs;
        q.exChunks = p.exChunks;
        q.exWorkBytes = p.exWorkBytes;
        q.memChunks = p.memChunks;
        q.memAccessBytes = p.memAccessBytes;
        q.resChunks = p.resChunks;
        q.usesAlu = (p.flags & 1u) != 0;
        q.isMult = (p.flags & 2u) != 0;
        q.isDiv = (p.flags & 4u) != 0;
        q.redirect = (p.flags & 8u) != 0;
        q.pcChangedBlocks = p.pcChangedBlocks;
        q.pcRippleExtra = p.pcRippleExtra;
        q.ifExtra = p.ifExtra;
        q.memExtra = p.memExtra;
        return q;
    }

    /** Per-instruction packed quanta, in stream order. */
    std::vector<Packed> q;
    /**
     * Shared (non-latch) activity delta per replay block; the latch
     * category stays zero — it is design-dependent and consumers
     * compute it per instruction.
     */
    std::vector<ActivityTotals> blockDelta;
    /** Final hierarchy statistics of the recording pass. */
    mem::CacheStats l1i, l1d, l2;

    /** Approximate heap footprint in bytes. */
    std::size_t
    bytes() const
    {
        return q.capacity() * sizeof(Packed) +
               blockDelta.capacity() * sizeof(ActivityTotals);
    }
};

/**
 * Base class: drives the recurrence, the memory hierarchy, and the
 * activity accounting; concrete designs provide plan().
 *
 * Feed it a dynamic trace through the TraceSink interface (one
 * functional-simulation pass can fan out to many models), then call
 * result().
 */
class InOrderPipeline : public cpu::TraceSink
{
  public:
    InOrderPipeline(std::string name, PipelineConfig config);

    /**
     * Bind the program/memory image used to sample cache-fill
     * contents for activity accounting. Must be called before the
     * first retire(); the memory must be the one the functional core
     * mutates.
     */
    void bind(const isa::Program &program, const mem::MainMemory &memory);

    /**
     * Bind for trace replay: the pipeline owns a private memory
     * image initialised from the program's data segment and applies
     * the trace's stores itself (capture applied them while
     * executing), so activity sampling on cache fills/writebacks
     * sees exactly the bytes the live run saw at that point in the
     * stream. Every replaying pipeline has its own image, so several
     * models can consume one shared trace concurrently.
     */
    void bindReplay(const isa::Program &program);

    void retire(const cpu::DynInstr &di) override;

    /**
     * Batched retirement: one virtual call per block instead of one
     * per instruction, with the scheduling loop kept monomorphic.
     * State after any block split is identical to per-instruction
     * retire() calls.
     */
    void retireBlock(std::span<const cpu::DynInstr> block) override;

    // ---- shared-quanta replay plumbing (used by replayPipelines) --

    /**
     * Fingerprint of everything the design-independent quanta depend
     * on: encoding, memory geometry, and compressor ranking. Two
     * pipelines with equal keys may share one SharedQuanta record.
     */
    std::string quantaKey() const;

    /**
     * Full retirement of @p block (identical to retireBlock()) that
     * additionally appends the design-independent front half to
     * @p rec: one Packed entry per instruction plus one shared
     * activity delta for the block. Virtual for the same reason as
     * retireBlockShared(): SharedReplayModel overrides it so plan()
     * and latchBoundaries() bind statically inside the loop.
     */
    virtual void retireBlockRecord(std::span<const cpu::DynInstr> block,
                                   SharedQuanta &rec);

    /**
     * Consumer retirement from a SharedQuanta record produced by a
     * same-key pipeline over the same block structure: skips
     * hierarchy/ALU/classification entirely and runs only latch
     * scaling, plan() and schedule(). @p base is the record index of
     * block[0], @p block_index the block's delta index. Final state
     * is bit-identical to the full path. Concrete designs override
     * this with the devirtualised retireBlockSharedAs() so plan()
     * inlines into the consumer loop.
     */
    virtual void retireBlockShared(std::span<const cpu::DynInstr> block,
                                   const SharedQuanta &rec,
                                   std::size_t base,
                                   std::size_t block_index);

    /**
     * Adopt the recording pass's hierarchy statistics so result()
     * reports real cache behaviour for shared-quanta consumers
     * (their own hierarchy was never driven).
     */
    void adoptSharedStats(const SharedQuanta &rec);

    /**
     * Adopt a complete memoised result: result() returns a copy of
     * @p r (with this pipeline's name) instead of locally accumulated
     * state. Used by replayPipelines() when a bit-identical earlier
     * replay of the same design/configuration/trace already produced
     * the result — the pipeline then skips the replay entirely.
     */
    void adoptResult(const PipelineResult &r);

    /**
     * True until the pipeline has consumed any instruction or adopted
     * a result: the state in which a memoised result is exactly what
     * a replay would produce, and in which a fresh full replay's
     * result is safe to memoise.
     */
    bool pristine() const { return instructions_ == 0 && !adoptedResult_; }

    /** An observer makes replays side-effectful: never memoise them. */
    bool observed() const { return observer_ != nullptr; }

    /**
     * True when this pipeline's plan()/latchBoundaries() depend only
     * on the constructor configuration and the per-instruction
     * quanta — the precondition for memoising a full-trace replay
     * result on the trace (replayPipelines). Defaults to false so a
     * custom subclass with per-instance runtime state (a mock with a
     * std::function plan, an adaptive design) can never adopt
     * another instance's memoised result; the library's fixed
     * designs override it to true.
     */
    virtual bool planIsPure() const { return false; }

    /** This pipeline's hierarchy (recording side of shared stats). */
    const mem::MemoryHierarchy &hierarchy() const { return hierarchy_; }

    /** Finalize and fetch results (idempotent). */
    PipelineResult result();

    const std::string &name() const { return name_; }
    const PipelineConfig &config() const { return config_; }

    /**
     * Per-instruction schedule callback: invoked after each
     * instruction is scheduled with its per-stage start/end cycles
     * (pipeline-diagram tooling and white-box tests).
     */
    using ScheduleObserver = std::function<void(
        const cpu::DynInstr &di, const TimingPlan &plan,
        const std::array<Cycle, maxStages> &start,
        const std::array<Cycle, maxStages> &end)>;

    void
    setScheduleObserver(ScheduleObserver obs)
    {
        observer_ = std::move(obs);
    }

  protected:
    /** Per-instruction schedule for this design. */
    virtual TimingPlan plan(const cpu::DynInstr &di,
                            const InstrQuanta &q) = 0;

    /** Latch boundaries this instruction traverses in this design. */
    virtual unsigned
    latchBoundaries(const InstrQuanta &q) const
    {
        (void)q;
        return 4;
    }

    /**
     * The one shared-quanta consumer body, parameterised over how
     * plan()/latchBoundaries() are invoked: the virtual default
     * passes virtual-dispatch callables, SharedReplayModel passes
     * statically-bound ones so the hooks inline into the loop. Keeps
     * the load-bearing subtlety below in exactly one place.
     */
    template <typename PlanFn, typename LatchFn>
    void
    retireBlockSharedWith(std::span<const cpu::DynInstr> block,
                          const SharedQuanta &rec, std::size_t base,
                          std::size_t block_index, PlanFn &&plan_fn,
                          LatchFn &&latch_fn)
    {
        SC_ASSERT(program_ != nullptr,
                  "pipeline '", name_, "' not bound to a program");
        SC_ASSERT(base + block.size() <= rec.q.size() &&
                      block_index < rec.blockDelta.size(),
                  "shared quanta record does not cover this block");
        activity_ += rec.blockDelta[block_index];
        for (std::size_t j = 0; j < block.size(); ++j) {
            const cpu::DynInstr &di = block[j];
            const SharedQuanta::Packed &p = rec.q[base + j];
            InstrQuanta q = SharedQuanta::unpack(p);

            // Match the canonical path: latchBoundaries() runs
            // before resChunks is filled in (see computeQuanta).
            const unsigned res_chunks = q.resChunks;
            q.resChunks = 0;
            addLatch(p.latchBase, latch_fn(q));
            q.resChunks = res_chunks;

            const TimingPlan tp = plan_fn(di, q);
            checkPlan(tp);
            schedule(di, q, tp);
        }
    }

    /**
     * The recording-pass body, parameterised like
     * retireBlockSharedWith() so the design hooks inline into the
     * loop (this is the heaviest pass of a CPI study: it runs the
     * quanta front half AND schedules).
     */
    template <typename PlanFn, typename LatchFn>
    void
    retireBlockRecordWith(std::span<const cpu::DynInstr> block,
                          SharedQuanta &rec, PlanFn &&plan_fn,
                          LatchFn &&latch_fn)
    {
        SC_ASSERT(program_ != nullptr,
                  "pipeline '", name_, "' not bound to a program");
        const ActivityTotals before = activity_;
        const bool apply_stores = replayMemory_ != nullptr;
        // Pre-size the record for the block so the hot loop writes
        // through a bare pointer (capacity was reserved up front).
        const std::size_t rec_base = rec.q.size();
        rec.q.resize(rec_base + block.size());
        SharedQuanta::Packed *rq = rec.q.data() + rec_base;
        for (const cpu::DynInstr &di : block) {
            if (apply_stores && di.dec->isStore)
                applyStore(di);
            InstrQuanta q = computeQuanta(di);

            // Latch accounting matches the consumer path exactly:
            // latchBoundaries() runs before resChunks is filled in.
            const unsigned res_chunks = q.resChunks;
            q.resChunks = 0;
            addLatch(curLatchBase_, latch_fn(q));
            q.resChunks = res_chunks;

            *rq++ = SharedQuanta::pack(q, curLatchBase_);
            const TimingPlan p = plan_fn(di, q);
            checkPlan(p);
            schedule(di, q, p);
        }
        rec.blockDelta.push_back(activityDelta(activity_, before));
    }

    /** a - b per category (activity accumulates monotonically). */
    static ActivityTotals activityDelta(const ActivityTotals &a,
                                        const ActivityTotals &b);

  private:
    /**
     * The design-independent front half of one instruction's
     * retirement. Does NOT account latches: every caller scales and
     * adds them itself (addLatch) so the design hook can be bound
     * statically in the devirtualised paths.
     */
    InstrQuanta computeQuanta(const cpu::DynInstr &di);

    /**
     * Account every activity category except latches; returns the
     * instruction's latch bit count before control/boundary scaling
     * (the design-independent part of the latch formula).
     * @p rs_bytes/@p rt_bytes/@p res_bytes are the operand values'
     * significance counts under config_.encoding, computed once by
     * computeQuanta() (from the sidecar tags when available).
     */
    Count accountActivity(const cpu::DynInstr &di, const InstrQuanta &q,
                          const sig::AluReport &alu,
                          const mem::MemOutcome &ifetch,
                          const mem::MemOutcome &daccess, bool has_mem,
                          unsigned rs_bytes, unsigned rt_bytes,
                          unsigned res_bytes);

    /** Scale and account the latch activity of one instruction. */
    void
    addLatch(Count base, unsigned boundaries)
    {
        Count latch_c = base + latchCtrlBits * boundaries;
        latch_c = latch_c * boundaries / 4;
        activity_.latch.add(latch_c, baselineLatchBits);
    }

    /** Cold out-of-line panic for the timing-plan validation. */
    [[noreturn, gnu::cold, gnu::noinline]] static void
    panicBadTimingPlan();

    /**
     * Validate a plan before scheduling it: stage count within
     * bounds and every stage-role index inside the plan's depth
     * (schedule()'s start/end arrays are only written up to
     * numStages, so an out-of-range readyStage would read
     * indeterminate cycles). Checked at every call site that feeds
     * schedule() — kept out of schedule() itself so the scheduler
     * stays within the inliner's budget in the replay loops.
     */
    static void
    checkPlan(const TimingPlan &p)
    {
        const unsigned max_role =
            std::max(std::max(p.consumeStage, p.resolveStage),
                     std::max(p.readyStage, p.loadReadyStage));
        if (p.numStages - 2 > maxStages - 2 ||
            max_role >= p.numStages) [[unlikely]] {
            panicBadTimingPlan();
        }
    }

    /**
     * The reservation-recurrence scheduler. Defined inline: it runs
     * once per instruction per design on every replay path, and
     * inlining it into the (CRTP-devirtualised) block loops keeps
     * the scheduler state in registers across the loop instead of
     * round-tripping through memory on an out-of-line call.
     */
    void
    schedule(const cpu::DynInstr &di, const InstrQuanta &q,
             const TimingPlan &plan)
    {
        // Validate the plan here, on every path that can reach the
        // scheduler: the stage-role indexes must stay inside the
        // plan's depth because start[]/end[] are only written up to
        // numStages (deliberately uninitialised beyond it, see
        // below), and a custom design's out-of-range readyStage must
        // die loudly instead of publishing garbage cycles. The panic
        // itself is out of line (cold, noinline) so the check stays
        // a handful of fused compares and schedule() keeps inlining
        // into the replay loops.
        const isa::DecodedInstr &dec = *di.dec;
        // Uninitialised on purpose (this runs once per instruction per
        // design): only stages [0, numStages) are ever read below. The
        // observer interface exposes the whole arrays, so zero the tail
        // for it on that (cold) path only.
        std::array<Cycle, maxStages> start;
        std::array<Cycle, maxStages> end;
        if (observer_) {
            start.fill(0);
            end.fill(0);
        }

        // Operand readiness (forwarding network).
        Cycle operand_ready = 0;
        if (dec.readsRs)
            operand_ready = std::max(operand_ready, regReady_[di.inst().rs()]);
        if (dec.readsRt)
            operand_ready = std::max(operand_ready, regReady_[di.inst().rt()]);
        if (dec.readsHilo)
            operand_ready = std::max(operand_ready, hiloReady_);

        // Fetch.
        const Cycle if_structural = prevEnd_[0];
        start[0] = std::max(if_structural, redirectReady_);
        if (redirectReady_ > if_structural)
            stalls_.controlCycles += redirectReady_ - if_structural;
        stalls_.icacheMissCycles += q.ifExtra;
        end[0] = start[0] + plan.dur[0];

        for (unsigned s = 1; s < plan.numStages; ++s) {
            const Cycle flow = start[s - 1] + plan.lead[s - 1];
            const Cycle structural = prevEnd_[s];
            const Cycle hazard =
                (s == plan.consumeStage) ? operand_ready : 0;
            start[s] = std::max({flow, structural, hazard});
            // Stall attribution, branchless: the waits are data-dependent
            // and unpredictable, so both deltas are computed and masked
            // by their win condition instead of branched over.
            const Cycle over_s = structural - std::max(flow, hazard);
            const Cycle over_h = hazard - std::max(flow, structural);
            stalls_.structuralCycles +=
                over_s * (structural > flow && structural >= hazard);
            stalls_.dataHazardCycles +=
                over_h * (hazard > flow && hazard > structural);
            end[s] = start[s] + plan.dur[s];
        }
        stalls_.dcacheMissCycles += q.memExtra;

        // Publish scheduler state. Stages this design never reaches are
        // zeroed only when a deeper plan preceded this one, so the
        // common fixed-depth case publishes exactly numStages entries.
        for (unsigned s = 0; s < plan.numStages; ++s)
            prevEnd_[s] = end[s];
        for (unsigned s = plan.numStages; s < prevNumStages_; ++s)
            prevEnd_[s] = 0;
        prevNumStages_ = plan.numStages;

        if (dec.writesDest && dec.dest != isa::reg::zero) {
            const unsigned rs =
                dec.isLoad ? plan.loadReadyStage : plan.readyStage;
            regReady_[dec.dest] = plan.streamForward
                                      ? start[rs] + plan.lead[rs]
                                      : end[rs];
        }
        if (dec.cls == isa::InstrClass::Mult ||
            dec.cls == isa::InstrClass::Div)
            hiloReady_ = end[plan.readyStage];
        if (dec.isControl) {
            const bool correct = predictor_.predictAndUpdate(
                di.pc, di.taken, di.nextPc, dec.isCondBranch);
            // A correct prediction keeps fetch on the right path: no
            // redirect bubble. A wrong one redirects after resolution.
            if (!correct)
                redirectReady_ = end[plan.resolveStage];
        }

        lastCycle_ = std::max(lastCycle_, end[plan.numStages - 1]);
        ++instructions_;
        lastPc_ = di.pc;

        if (observer_)
            observer_(di, plan, start, end);
    }


    /** Re-apply one trace store to the replay memory image. */
    void applyStore(const cpu::DynInstr &di);

    /** Compressed fetch width of the text word at @p addr (memo). */
    unsigned
    fetchWidthAt(Addr addr) const
    {
        return fetchWidth_[(addr - program_->textStart()) / wordBytes];
    }

    std::string name_;
    PipelineConfig config_;
    sig::SerialAlu alu_;
    mem::MemoryHierarchy hierarchy_;
    BranchPredictor predictor_;
    ScheduleObserver observer_;

    /**
     * Significant bytes under config_.encoding per Ext3 sidecar tag
     * (DynInstr::sigTags nibbles): every encoding's significance
     * count is a pure function of the Ext3 pattern, so tagged
     * replays look the count up instead of re-classifying the
     * operand word (bit-identical either way; see computeQuanta()).
     */
    std::array<std::uint8_t, 16> tagBytes_{};

    const isa::Program *program_ = nullptr;
    const mem::MainMemory *memory_ = nullptr;
    /** Owned evolving memory image when bound via bindReplay(). */
    std::unique_ptr<mem::MainMemory> replayMemory_;
    /**
     * Per-static-instruction compressed fetch width, memoised at
     * bind time (fetchBytes() permutes/recodes the whole word, far
     * too much work to redo for every dynamic instance).
     */
    std::vector<std::uint8_t> fetchWidth_;

    // Scheduler state.
    std::array<Cycle, maxStages> prevEnd_{};
    /** Depth of the previous plan (bounds the prevEnd_ tail zeroing). */
    unsigned prevNumStages_ = maxStages;
    std::array<Cycle, isa::numRegs> regReady_{};
    Cycle hiloReady_ = 0;
    Cycle redirectReady_ = 0;
    Cycle lastCycle_ = 0;
    Addr lastPc_ = 0;
    bool lastWasRedirect_ = false;

    DWord instructions_ = 0;
    StallBreakdown stalls_;
    ActivityTotals activity_;

    // Scratch for plan(): AluReport of the current instruction.
    sig::AluReport curAlu_;
    // Scratch: latch base bits of the current instruction.
    Count curLatchBase_ = 0;
    // Hierarchy stats adopted from a SharedQuanta record, if any.
    struct AdoptedStats
    {
        bool valid = false;
        mem::CacheStats l1i, l1d, l2;
    };
    AdoptedStats adoptedStats_;
    // Complete result adopted from a replay memo, if any.
    std::unique_ptr<PipelineResult> adoptedResult_;

    friend struct PipelineTestPeek;
};

/**
 * CRTP intermediary between InOrderPipeline and the concrete
 * designs: supplies the devirtualised shared-quanta consumer
 * override exactly once. D's plan()/latchBoundaries() bind
 * statically inside retireBlockSharedWith(), so they inline into the
 * consumer loop; designs stay `class X : public SharedReplayModel<X>`
 * with a `friend SharedReplayModel<X>` so the hooks remain
 * protected.
 */
template <typename D>
class SharedReplayModel : public InOrderPipeline
{
  public:
    using InOrderPipeline::InOrderPipeline;

    void
    retireBlockShared(std::span<const cpu::DynInstr> block,
                      const SharedQuanta &rec, std::size_t base,
                      std::size_t block_index) override
    {
        D *self = static_cast<D *>(this);
        retireBlockSharedWith(
            block, rec, base, block_index,
            [self](const cpu::DynInstr &di, const InstrQuanta &q) {
                return self->D::plan(di, q);
            },
            [self](const InstrQuanta &q) {
                return self->D::latchBoundaries(q);
            });
    }

    void
    retireBlockRecord(std::span<const cpu::DynInstr> block,
                      SharedQuanta &rec) override
    {
        D *self = static_cast<D *>(this);
        retireBlockRecordWith(
            block, rec,
            [self](const cpu::DynInstr &di, const InstrQuanta &q) {
                return self->D::plan(di, q);
            },
            [self](const InstrQuanta &q) {
                return self->D::latchBoundaries(q);
            });
    }
};

// ---- inline implementations of the per-instruction front half ----
//
// computeQuanta()/accountActivity() run once per instruction on
// every full replay path; defining them here lets them inline into
// the devirtualised record loops (retireBlockRecordWith) so the
// whole front half fuses with scheduling instead of shuttling an
// InstrQuanta through an out-of-line call per instruction.

namespace quanta_detail
{

/** Chunks of a value under an encoding. */
inline unsigned
chunksOf(Word v, sig::Encoding enc)
{
    return sig::significantBytesUnder(v, enc) / sig::chunkBytes(enc);
}

/** Chunks moved by a memory access of @p bytes with datum @p v. */
inline unsigned
memChunksOf(Word v, unsigned bytes, sig::Encoding enc)
{
    const unsigned cb = sig::chunkBytes(enc);
    if (bytes <= cb)
        return 1;
    // Sub-word accesses compress within their own width: a halfword
    // whose upper byte is a sign fill moves one byte.
    Word extended = v;
    if (bytes == 2)
        extended = signExtend(v, 16);
    const unsigned full = divCeil(bytes, cb);
    return std::min(full, chunksOf(extended, enc));
}

} // namespace quanta_detail

inline InstrQuanta
InOrderPipeline::computeQuanta(const cpu::DynInstr &di)
{
    const sig::Encoding enc = config_.encoding;
    const isa::DecodedInstr &dec = *di.dec;
    InstrQuanta q;

    // Significance counts of the three register-file values, via the
    // capture-time sidecar tags when the replay carries them (the
    // per-tag tables are exact, see the constructor) and per-word
    // classification when it doesn't (live simulation). Computed once
    // here and shared with the activity accounting below, which used
    // to classify the same words a second time.
    const unsigned tags = di.sigTags;
    unsigned rs_bytes, rt_bytes, res_bytes;
    if (tags != 0) {
        rs_bytes = tagBytes_[tags & 0xFu];
        rt_bytes = tagBytes_[(tags >> 4) & 0xFu];
        res_bytes = tagBytes_[(tags >> 8) & 0xFu];
    } else {
        rs_bytes = sig::significantBytesUnder(di.srcRs, enc);
        rt_bytes = sig::significantBytesUnder(di.srcRt, enc);
        res_bytes = sig::significantBytesUnder(di.result, enc);
    }
    const unsigned chunk_bytes = sig::chunkBytes(enc);

    // ---- fetch side -----------------------------------------------------
    q.fetchBytes = fetchWidthAt(di.pc);
    const mem::MemOutcome ifo = hierarchy_.instrFetch(di.pc);
    q.ifExtra = ifo.extraLatency;

    // ---- PC update ------------------------------------------------------
    const unsigned block_bits = 8 * chunk_bytes;
    q.redirect = dec.isControl && di.nextPc != di.pc + 4;
    q.pcChangedBlocks = sig::changedBlocks(di.pc, di.nextPc, block_bits);
    if (!q.redirect) {
        const int hi =
            sig::highestChangedBlock(di.pc, di.nextPc, block_bits);
        q.pcRippleExtra = hi > 0 ? static_cast<unsigned>(hi) : 0;
    }

    // ---- register sources -----------------------------------------------
    if (dec.readsRs) {
        ++q.numSrcRegs;
        q.srcChunks = std::max(q.srcChunks, rs_bytes / chunk_bytes);
    }
    if (dec.readsRt) {
        ++q.numSrcRegs;
        q.srcChunks = std::max(q.srcChunks, rt_bytes / chunk_bytes);
    }

    // ---- ALU work ---------------------------------------------------------
    // One flat dispatch on the decode-time AluOp memo instead of the
    // class/format/funct/opcode cascade (same cases, same order of
    // evaluation — aluOpOf() in isa/instruction.cpp is the mapping).
    q.usesAlu = true;
    switch (dec.aluOp) {
      case isa::AluOp::AddRR:
        curAlu_ = alu_.add(di.srcRs, di.srcRt);
        break;
      case isa::AluOp::SubRR:
        curAlu_ = alu_.sub(di.srcRs, di.srcRt);
        break;
      case isa::AluOp::AndRR:
        curAlu_ = alu_.logic(di.srcRs, di.srcRt, sig::LogicOp::And);
        break;
      case isa::AluOp::OrRR:
        curAlu_ = alu_.logic(di.srcRs, di.srcRt, sig::LogicOp::Or);
        break;
      case isa::AluOp::XorRR:
        curAlu_ = alu_.logic(di.srcRs, di.srcRt, sig::LogicOp::Xor);
        break;
      case isa::AluOp::NorRR:
        curAlu_ = alu_.logic(di.srcRs, di.srcRt, sig::LogicOp::Nor);
        break;
      case isa::AluOp::SltRR:
        curAlu_ = alu_.slt(di.srcRs, di.srcRt, false);
        break;
      case isa::AluOp::SltuRR:
        curAlu_ = alu_.slt(di.srcRs, di.srcRt, true);
        break;
      case isa::AluOp::MoveHiLo:
        curAlu_ = alu_.passThrough(dec.writesDest ? di.result
                                                  : di.srcRs);
        break;
      case isa::AluOp::AddImm:
        curAlu_ = alu_.add(di.srcRs,
                           static_cast<Word>(di.inst().simm16()));
        break;
      case isa::AluOp::SltImm:
        curAlu_ = alu_.slt(di.srcRs,
                           static_cast<Word>(di.inst().simm16()), false);
        break;
      case isa::AluOp::SltuImm:
        curAlu_ = alu_.slt(di.srcRs,
                           static_cast<Word>(di.inst().simm16()), true);
        break;
      case isa::AluOp::AndImm:
        curAlu_ = alu_.logic(di.srcRs, di.inst().imm16(),
                             sig::LogicOp::And);
        break;
      case isa::AluOp::OrImm:
        curAlu_ = alu_.logic(di.srcRs, di.inst().imm16(),
                             sig::LogicOp::Or);
        break;
      case isa::AluOp::XorImm:
        curAlu_ = alu_.logic(di.srcRs, di.inst().imm16(),
                             sig::LogicOp::Xor);
        break;
      case isa::AluOp::Lui:
        curAlu_ = alu_.passThrough(di.result);
        break;
      case isa::AluOp::Shift:
        curAlu_ = alu_.shift(di.srcRt, di.result);
        break;
      case isa::AluOp::Mult:
        curAlu_ = alu_.multDiv(di.srcRs, di.srcRt, 0);
        q.isMult = true;
        break;
      case isa::AluOp::Div:
        curAlu_ = alu_.multDiv(di.srcRs, di.srcRt, 0);
        q.isDiv = true;
        break;
      case isa::AluOp::MemAdd: // address generation
        curAlu_ = alu_.add(di.srcRs,
                           static_cast<Word>(di.inst().simm16()));
        break;
      case isa::AluOp::CmpRR:
        curAlu_ = alu_.sub(di.srcRs, di.srcRt);
        break;
      case isa::AluOp::CmpRZero:
        curAlu_ = alu_.sub(di.srcRs, 0);
        break;
      case isa::AluOp::None:
        curAlu_ = sig::AluReport{};
        curAlu_.workMask = 0;
        curAlu_.workBytes = 0;
        q.usesAlu = false;
        break;
    }
    q.exChunks = q.usesAlu ? std::max(1u, curAlu_.workChunks()) : 0;
    q.exWorkBytes = curAlu_.workBytes;

    // ---- memory ------------------------------------------------------------
    if (dec.isLoad || dec.isStore) {
        const mem::MemOutcome dout =
            hierarchy_.dataAccess(di.memAddr, dec.isStore);
        q.memExtra = dout.extraLatency;
        q.memAccessBytes = dec.memBytes;
        q.memChunks = quanta_detail::memChunksOf(di.memData, dec.memBytes,
                                  config_.encoding);
        curLatchBase_ = accountActivity(di, q, curAlu_, ifo, dout, true,
                                        rs_bytes, rt_bytes, res_bytes);
    } else {
        curLatchBase_ =
            accountActivity(di, q, curAlu_, ifo, mem::MemOutcome{},
                            false, rs_bytes, rt_bytes, res_bytes);
    }
    // ---- result ------------------------------------------------------------
    // (Latch accounting moved to the callers: they scale with the
    // design's latchBoundaries() hook — statically bound in the
    // devirtualised paths — against q with resChunks still zero.)
    if (dec.writesDest && dec.dest != isa::reg::zero)
        q.resChunks = res_bytes / chunk_bytes;

    return q;
}

inline Count
InOrderPipeline::accountActivity(const cpu::DynInstr &di, const InstrQuanta &q,
                                 const sig::AluReport &alu,
                                 const mem::MemOutcome &ifetch,
                                 const mem::MemOutcome &daccess,
                                 bool has_mem, unsigned rs_bytes,
                                 unsigned rt_bytes, unsigned res_bytes)
{
    const sig::Encoding enc = config_.encoding;
    const unsigned eb = sig::extensionBits(enc);
    const unsigned cb = sig::chunkBytes(enc);
    const isa::DecodedInstr &dec = *di.dec;

    // Fetch: 3-4 bytes plus the fetch extension bit vs a full word.
    activity_.fetch.add(8 * q.fetchBytes + 1, 32);
    if (ifetch.l1Fill && program_) {
        const unsigned line_words =
            hierarchy_.l1i().params().lineBytes / wordBytes;
        for (unsigned w = 0; w < line_words; ++w) {
            const Addr a =
                ifetch.fillLine + static_cast<Addr>(w * wordBytes);
            unsigned fb = 4;
            if (a >= program_->textStart() && a < program_->textEnd())
                fb = fetchWidthAt(a);
            activity_.fetch.add(8 * fb + 1 + ifillPermuteBits, 32);
        }
    }

    // Register file reads.
    if (dec.readsRs)
        activity_.rfRead.add(8 * rs_bytes + eb, 32);
    if (dec.readsRt)
        activity_.rfRead.add(8 * rt_bytes + eb, 32);

    // Register file write-back.
    if (dec.writesDest && dec.dest != isa::reg::zero)
        activity_.rfWrite.add(8 * res_bytes + eb, 32);
    else
        res_bytes = 0;

    // ALU datapath.
    if (q.usesAlu)
        activity_.alu.add(8 * alu.workBytes, 32);

    // Data cache.
    if (has_mem) {
        activity_.dcData.add(8 * q.memChunks * cb + eb, 32);
        activity_.dcTag.add(hierarchy_.l1d().tagBits(),
                            hierarchy_.l1d().tagBits());
        auto account_line = [&](Addr line) {
            const unsigned line_words =
                hierarchy_.l1d().params().lineBytes / wordBytes;
            for (unsigned w = 0; w < line_words; ++w) {
                const Word v = memory_ ? memory_->readWord(
                                             line + w * wordBytes)
                                       : 0;
                activity_.dcData.add(
                    8 * sig::significantBytesUnder(v, enc) + eb, 32);
            }
            activity_.dcTag.add(hierarchy_.l1d().tagBits(),
                                hierarchy_.l1d().tagBits());
        };
        if (daccess.l1Fill)
            account_line(daccess.fillLine);
        if (daccess.writeback)
            account_line(daccess.victimLine);
    }

    // PC increment.
    const unsigned block_bits = 8 * cb;
    activity_.pcInc.add(q.pcChangedBlocks * block_bits, 32);

    // Latches: instruction + PC, operands, result/store data, and
    // write-back value; returned unscaled — the caller applies the
    // design-specific boundary scaling (addLatch), which is the only
    // design-dependent piece of the whole accounting.
    Count latch_c = 8 * q.fetchBytes + 1 +
                    q.pcChangedBlocks * block_bits;
    if (dec.readsRs)
        latch_c += 8 * rs_bytes + eb;
    if (dec.readsRt)
        latch_c += 8 * rt_bytes + eb;
    latch_c += 2 * (8 * res_bytes + eb * (res_bytes ? 1 : 0));
    if (dec.isStore)
        latch_c += 8 * q.memChunks * cb + eb;
    return latch_c;
}


} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_PIPELINE_H_
