#include "pipeline/runner.h"

#include "common/logging.h"
#include "common/telemetry.h"

namespace sigcomp::pipeline
{

cpu::RunResult
runPipelines(const isa::Program &program,
             const std::vector<InOrderPipeline *> &pipes,
             const std::vector<cpu::TraceSink *> &extra_sinks)
{
    mem::MainMemory memory;
    cpu::FunctionalCore core(program, memory);

    std::vector<cpu::TraceSink *> sinks;
    for (InOrderPipeline *p : pipes) {
        p->bind(program, memory);
        sinks.push_back(p);
    }
    sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());
    FanoutSink fanout(std::move(sinks));

    const cpu::RunResult r = core.run(&fanout);
    if (r.reason == cpu::StopReason::AssertFailed) {
        SC_FATAL("program '", program.name(), "' failed self-check: got ",
                 r.assertActual, ", expected ", r.assertExpected);
    }
    if (r.reason == cpu::StopReason::InstrLimit)
        SC_FATAL("program '", program.name(), "' hit instruction limit");
    return r;
}

std::vector<PipelineResult>
runDesigns(const isa::Program &program, const std::vector<Design> &designs,
           const PipelineConfig &config)
{
    std::vector<std::unique_ptr<InOrderPipeline>> owned;
    std::vector<InOrderPipeline *> raw;
    for (Design d : designs) {
        owned.push_back(makePipeline(d, config));
        raw.push_back(owned.back().get());
    }
    runPipelines(program, raw);

    std::vector<PipelineResult> out;
    out.reserve(owned.size());
    for (auto &p : owned)
        out.push_back(p->result());
    return out;
}

namespace
{

/**
 * Annex key of a pipeline's memoised full-trace PipelineResult.
 * quantaKey() covers only what the design-independent quanta depend
 * on, so everything else the *result* depends on is appended: the
 * concrete type (custom designs may reuse a name), the design name,
 * and the scheduling-side configuration (ALU occupancies, branch
 * prediction) that plan()/schedule() consume.
 */
std::string
resultKey(const InOrderPipeline &p)
{
    const PipelineConfig &c = p.config();
    return "result:" + std::string(typeid(p).name()) + ":" + p.name() +
           ":" + p.quantaKey() + ":" + std::to_string(c.multCycles) +
           ":" + std::to_string(c.divCycles) + ":" +
           std::to_string(static_cast<int>(c.predictor)) + ":" +
           std::to_string(c.phtEntries) + ":" +
           std::to_string(c.btbEntries);
}

/**
 * Orchestrates one same-key group of pipelines over a replay: the
 * first pipeline records the design-independent quanta (or, when a
 * previous replay of this trace already recorded them, everyone
 * consumes the cached record) and the rest run as shared-quanta
 * consumers. See SharedQuanta in pipeline.h.
 */
class GroupReplaySink : public cpu::TraceSink
{
  public:
    GroupReplaySink(std::vector<InOrderPipeline *> pipes,
                    std::shared_ptr<const SharedQuanta> cached,
                    std::size_t trace_size)
        : pipes_(std::move(pipes)), cached_(std::move(cached))
    {
        if (!cached_) {
            recording_ = std::make_shared<SharedQuanta>();
            recording_->q.reserve(trace_size);
            recording_->blockDelta.reserve(
                trace_size / cpu::TraceView::defaultBlockSize + 2);
        }
    }

    void
    retire(const cpu::DynInstr &di) override
    {
        retireBlock(std::span<const cpu::DynInstr>(&di, 1));
    }

    void
    retireBlock(std::span<const cpu::DynInstr> block) override
    {
        // A record is only reusable by future replays if its block
        // deltas line up with TraceView's canonical block structure
        // (every block full-sized except possibly the last).
        if (saw_partial_)
            canonical_ = false;
        if (block.size() != cpu::TraceView::defaultBlockSize)
            saw_partial_ = true;

        if (cached_) {
            for (InOrderPipeline *p : pipes_)
                p->retireBlockShared(block, *cached_, base_, blockIndex_);
        } else {
            {
                // The design-independent front half: computed once
                // per group by the recording leader, shared by the
                // rest.
                SIGCOMP_SPAN("quanta.compute");
                pipes_.front()->retireBlockRecord(block, *recording_);
            }
            for (std::size_t i = 1; i < pipes_.size(); ++i) {
                pipes_[i]->retireBlockShared(block, *recording_, base_,
                                             blockIndex_);
            }
        }
        base_ += block.size();
        ++blockIndex_;
    }

    /**
     * After the replay: fill in the record's final hierarchy stats,
     * publish it on the trace (first writer wins), and hand every
     * consumer its cache statistics.
     */
    void
    finish(const cpu::TraceBuffer &trace)
    {
        std::shared_ptr<const SharedQuanta> rec = cached_;
        if (recording_) {
            recording_->l1i =
                pipes_.front()->hierarchy().l1i().stats();
            recording_->l1d =
                pipes_.front()->hierarchy().l1d().stats();
            recording_->l2 = pipes_.front()->hierarchy().l2().stats();
            // Publish for future replays of this trace (first writer
            // wins; a racing recording is identical by determinism).
            if (canonical_) {
                trace.annexStoreIfAbsent(
                    pipes_.front()->quantaKey(),
                    std::static_pointer_cast<void>(recording_),
                    recording_->bytes());
            }
            rec = recording_; // this replay's consumers used ours
        }
        const std::size_t first_consumer = recording_ ? 1 : 0;
        for (std::size_t i = first_consumer; i < pipes_.size(); ++i)
            pipes_[i]->adoptSharedStats(*rec);
    }

  private:
    std::vector<InOrderPipeline *> pipes_;
    std::shared_ptr<const SharedQuanta> cached_;
    std::shared_ptr<SharedQuanta> recording_;
    std::size_t base_ = 0;
    std::size_t blockIndex_ = 0;
    bool saw_partial_ = false;
    bool canonical_ = true;
};

} // namespace

cpu::RunResult
replayPipelines(const cpu::TraceBuffer &trace,
                const std::vector<InOrderPipeline *> &pipes,
                const std::vector<cpu::TraceSink *> &extra_sinks,
                const CancelToken *cancel)
{
    // A full-trace replay of a fresh pipeline is a pure function of
    // (trace, design, configuration), so its complete PipelineResult
    // is cached on the trace as an annex: a later replay of the same
    // design — e.g. the activity study's byte-serial pipeline after a
    // CPI study over all designs — adopts the memoised result and
    // skips its replay entirely. The same purity dedupes *within*
    // one call: when a fused study plan registers the same
    // (design, configuration) twice — a CPI study over all designs
    // next to an activity or energy study — only the first instance
    // replays and every duplicate adopts its result afterwards.
    // Only fresh, unobserved pipelines participate (an already-fed
    // pipeline accumulates; an observer makes the replay
    // side-effectful).
    std::vector<InOrderPipeline *> running;
    running.reserve(pipes.size());
    std::vector<std::pair<InOrderPipeline *, InOrderPipeline *>>
        followers; // (duplicate, its running leader)
    std::vector<std::pair<std::string, InOrderPipeline *>> leaders;
    for (InOrderPipeline *p : pipes) {
        if (p->planIsPure() && p->pristine() && !p->observed()) {
            const std::string key = resultKey(*p);
            if (auto memo = std::static_pointer_cast<const PipelineResult>(
                    trace.annexGet(key))) {
                p->adoptResult(*memo);
                continue;
            }
            InOrderPipeline *leader = nullptr;
            for (const auto &[lkey, lp] : leaders) {
                if (lkey == key) {
                    leader = lp;
                    break;
                }
            }
            if (leader != nullptr) {
                followers.push_back({p, leader});
                continue;
            }
            leaders.push_back({key, p});
        }
        running.push_back(p);
    }

    // Partition the pipelines into same-quanta-key groups, each fed
    // through one GroupReplaySink so the design-independent front
    // half runs once per group (and once per process per trace, via
    // the annex cache) instead of once per pipeline.
    std::vector<std::string> group_keys;
    std::vector<std::vector<InOrderPipeline *>> groups;
    std::vector<bool> was_pristine;
    for (InOrderPipeline *p : running) {
        const bool pristine =
            p->planIsPure() && p->pristine() && !p->observed();
        p->bindReplay(trace.program());
        const std::string key = p->quantaKey();
        bool placed = false;
        for (std::size_t g = 0; g < group_keys.size(); ++g) {
            if (group_keys[g] == key) {
                groups[g].push_back(p);
                placed = true;
                break;
            }
        }
        if (!placed) {
            group_keys.push_back(key);
            groups.push_back({p});
        }
        was_pristine.push_back(pristine);
    }

    std::vector<std::unique_ptr<GroupReplaySink>> group_sinks;
    std::vector<cpu::TraceSink *> sinks;
    sinks.reserve(groups.size() + extra_sinks.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        auto cached = std::static_pointer_cast<const SharedQuanta>(
            trace.annexGet(group_keys[g]));
        group_sinks.push_back(std::make_unique<GroupReplaySink>(
            std::move(groups[g]), std::move(cached), trace.size()));
        sinks.push_back(group_sinks.back().get());
    }
    sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());

    if (!sinks.empty()) {
        SIGCOMP_SPAN("replay.pass");
        const bool completed = cpu::TraceView(trace).replay(
            sinks, cpu::TraceView::defaultBlockSize, cancel);
        if (!completed) {
            // Aborted pass: every group sink holds a partial quanta
            // record and every pipeline partial counts. Publishing
            // any of it (finish(), the result memos, follower
            // adoption) would poison the trace's annex cache with
            // prefix state, so unwind instead of returning.
            throw CancelledError();
        }
    }
    for (auto &gs : group_sinks)
        gs->finish(trace);

    // Publish the replays just performed (first writer wins; racing
    // replays are identical by determinism).
    for (std::size_t i = 0; i < running.size(); ++i) {
        if (!was_pristine[i])
            continue;
        InOrderPipeline *p = running[i];
        auto memo = std::make_shared<PipelineResult>(p->result());
        const std::size_t bytes =
            sizeof(PipelineResult) + memo->name.size();
        trace.annexStoreIfAbsent(resultKey(*p),
                                 std::static_pointer_cast<void>(memo),
                                 bytes);
    }

    // Duplicates adopt their leader's finalized result — identical
    // by purity, without a second consumer pass.
    for (auto &[follower, leader] : followers)
        follower->adoptResult(leader->result());

    // Self-check/limit failures were already fatal at capture time
    // (deliberately truncated traces excepted), so the recorded
    // result can be returned as-is.
    return trace.runResult();
}

std::vector<PipelineResult>
replayDesigns(const cpu::TraceBuffer &trace,
              const std::vector<Design> &designs,
              const PipelineConfig &config)
{
    std::vector<std::unique_ptr<InOrderPipeline>> owned;
    std::vector<InOrderPipeline *> raw;
    for (Design d : designs) {
        owned.push_back(makePipeline(d, config));
        raw.push_back(owned.back().get());
    }
    replayPipelines(trace, raw);

    std::vector<PipelineResult> out;
    out.reserve(owned.size());
    for (auto &p : owned)
        out.push_back(p->result());
    return out;
}

} // namespace sigcomp::pipeline
