#include "pipeline/runner.h"

#include "common/logging.h"

namespace sigcomp::pipeline
{

cpu::RunResult
runPipelines(const isa::Program &program,
             const std::vector<InOrderPipeline *> &pipes,
             const std::vector<cpu::TraceSink *> &extra_sinks)
{
    mem::MainMemory memory;
    cpu::FunctionalCore core(program, memory);

    std::vector<cpu::TraceSink *> sinks;
    for (InOrderPipeline *p : pipes) {
        p->bind(program, memory);
        sinks.push_back(p);
    }
    sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());
    FanoutSink fanout(std::move(sinks));

    const cpu::RunResult r = core.run(&fanout);
    if (r.reason == cpu::StopReason::AssertFailed) {
        SC_FATAL("program '", program.name(), "' failed self-check: got ",
                 r.assertActual, ", expected ", r.assertExpected);
    }
    if (r.reason == cpu::StopReason::InstrLimit)
        SC_FATAL("program '", program.name(), "' hit instruction limit");
    return r;
}

std::vector<PipelineResult>
runDesigns(const isa::Program &program, const std::vector<Design> &designs,
           const PipelineConfig &config)
{
    std::vector<std::unique_ptr<InOrderPipeline>> owned;
    std::vector<InOrderPipeline *> raw;
    for (Design d : designs) {
        owned.push_back(makePipeline(d, config));
        raw.push_back(owned.back().get());
    }
    runPipelines(program, raw);

    std::vector<PipelineResult> out;
    out.reserve(owned.size());
    for (auto &p : owned)
        out.push_back(p->result());
    return out;
}

} // namespace sigcomp::pipeline
