/**
 * @file
 * Convenience driver: run one program's dynamic trace through any
 * number of pipeline models in a single functional-simulation pass.
 */

#ifndef SIGCOMP_PIPELINE_RUNNER_H_
#define SIGCOMP_PIPELINE_RUNNER_H_

#include <vector>

#include "cpu/functional_core.h"
#include "pipeline/models.h"

namespace sigcomp::pipeline
{

/** Fan one trace out to several sinks in order. */
class FanoutSink : public cpu::TraceSink
{
  public:
    explicit FanoutSink(std::vector<cpu::TraceSink *> sinks)
        : sinks_(std::move(sinks))
    {}

    void
    retire(const cpu::DynInstr &di) override
    {
        for (cpu::TraceSink *s : sinks_)
            s->retire(di);
    }

  private:
    std::vector<cpu::TraceSink *> sinks_;
};

/**
 * Execute @p program once, feeding every pipeline (and any extra
 * sinks such as profilers). Binds each pipeline to the program and
 * live memory image for activity sampling. Fatal if the program
 * fails its self-check.
 *
 * @return the functional run result (instruction count etc.).
 */
cpu::RunResult
runPipelines(const isa::Program &program,
             const std::vector<InOrderPipeline *> &pipes,
             const std::vector<cpu::TraceSink *> &extra_sinks = {});

/**
 * Build the given designs with a shared config, run @p program, and
 * return their results in order.
 */
std::vector<PipelineResult>
runDesigns(const isa::Program &program, const std::vector<Design> &designs,
           const PipelineConfig &config);

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_RUNNER_H_
