/**
 * @file
 * Convenience driver: run one program's dynamic trace through any
 * number of pipeline models in a single functional-simulation pass.
 */

#ifndef SIGCOMP_PIPELINE_RUNNER_H_
#define SIGCOMP_PIPELINE_RUNNER_H_

#include <vector>

#include "cpu/functional_core.h"
#include "cpu/trace_buffer.h"
#include "pipeline/models.h"

namespace sigcomp::pipeline
{

/** Fan one trace out to several sinks in order. */
class FanoutSink : public cpu::TraceSink
{
  public:
    explicit FanoutSink(std::vector<cpu::TraceSink *> sinks)
        : sinks_(std::move(sinks))
    {}

    void
    retire(const cpu::DynInstr &di) override
    {
        for (cpu::TraceSink *s : sinks_)
            s->retire(di);
    }

    void
    retireBlock(std::span<const cpu::DynInstr> block) override
    {
        for (cpu::TraceSink *s : sinks_)
            s->retireBlock(block);
    }

  private:
    std::vector<cpu::TraceSink *> sinks_;
};

/**
 * Execute @p program once, feeding every pipeline (and any extra
 * sinks such as profilers). Binds each pipeline to the program and
 * live memory image for activity sampling. Fatal if the program
 * fails its self-check.
 *
 * @return the functional run result (instruction count etc.).
 */
cpu::RunResult
runPipelines(const isa::Program &program,
             const std::vector<InOrderPipeline *> &pipes,
             const std::vector<cpu::TraceSink *> &extra_sinks = {});

/**
 * Build the given designs with a shared config, run @p program, and
 * return their results in order.
 */
std::vector<PipelineResult>
runDesigns(const isa::Program &program, const std::vector<Design> &designs,
           const PipelineConfig &config);

/**
 * Replay a captured trace through pipelines (and any extra sinks)
 * instead of re-running functional simulation: the batched
 * equivalent of runPipelines(). Each pipeline is bound in replay
 * mode (own evolving memory image, see InOrderPipeline::bindReplay),
 * so results are bit-identical to a live run of the same program.
 * The trace must outlive the pipelines' result() calls.
 *
 * @p cancel aborts cooperatively at the next replay-block boundary.
 * An aborted replay throws CancelledError after suppressing every
 * publication side effect — no SharedQuanta record, no memoised
 * PipelineResult, no follower adoption — so a partial pass can never
 * poison the trace's annex cache; the pipelines hold partial state
 * and must be discarded by the caller.
 *
 * @return the functional run result recorded at capture.
 */
cpu::RunResult
replayPipelines(const cpu::TraceBuffer &trace,
                const std::vector<InOrderPipeline *> &pipes,
                const std::vector<cpu::TraceSink *> &extra_sinks = {},
                const CancelToken *cancel = nullptr);

/** Replay equivalent of runDesigns(): one trace, many designs. */
std::vector<PipelineResult>
replayDesigns(const cpu::TraceBuffer &trace,
              const std::vector<Design> &designs,
              const PipelineConfig &config);

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_RUNNER_H_
