/**
 * @file
 * The paper's pipeline implementations (sections 3-6):
 *
 *  - Baseline32            conventional 32-bit 5-stage pipeline
 *  - ByteSerial            1-byte datapath, 3-byte I-fetch (Fig 3)
 *  - HalfwordSerial        16-bit granularity variant (Fig 4)
 *  - ByteSemiParallel      3B IF / 2B RF+ALU / 1B D$ (Fig 5)
 *  - ByteParallelSkewed    full-width skewed 7-stage (Fig 7)
 *  - ByteParallelCompressed full-width 5-stage, variable occupancy
 *                          (Fig 9)
 *  - SkewedBypass          skewed + short-operand stage skipping
 *                          (Fig 10)
 */

#ifndef SIGCOMP_PIPELINE_MODELS_H_
#define SIGCOMP_PIPELINE_MODELS_H_

#include <memory>
#include <vector>

#include "pipeline/pipeline.h"

namespace sigcomp::pipeline
{

/** Enumeration of all modelled designs. */
enum class Design
{
    Baseline32,
    ByteSerial,
    HalfwordSerial,
    ByteSemiParallel,
    ByteParallelSkewed,
    ByteParallelCompressed,
    SkewedBypass,
};

/** Canonical short name ("baseline32", "byte-serial", ...). */
std::string designName(Design d);

/** All designs in presentation order. */
std::vector<Design> allDesigns();

/**
 * Construct a pipeline model. HalfwordSerial overrides the
 * configured encoding with Half1; all other designs use
 * config.encoding (Ext3 unless an ablation asks otherwise).
 */
std::unique_ptr<InOrderPipeline> makePipeline(Design d,
                                              PipelineConfig config);

/** The conventional 32-bit in-order 5-stage pipeline. */
class Baseline32 : public InOrderPipeline
{
  public:
    explicit Baseline32(PipelineConfig config);

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 3: byte-serial datapath. */
class ByteSerial : public InOrderPipeline
{
  public:
    explicit ByteSerial(PipelineConfig config);

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Byte-serial at halfword granularity. */
class HalfwordSerial : public InOrderPipeline
{
  public:
    explicit HalfwordSerial(PipelineConfig config);

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 5: 3-byte fetch, 2-byte RF/ALU, 1-byte data cache. */
class ByteSemiParallel : public InOrderPipeline
{
  public:
    explicit ByteSemiParallel(PipelineConfig config);

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 7: full-width skewed pipeline (7 stages). */
class ByteParallelSkewed : public InOrderPipeline
{
  public:
    explicit ByteParallelSkewed(PipelineConfig config);

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
    unsigned latchBoundaries(const InstrQuanta &q) const override;
};

/** Fig 9: full-width five-stage pipeline, compressed occupancy. */
class ByteParallelCompressed : public InOrderPipeline
{
  public:
    explicit ByteParallelCompressed(PipelineConfig config);

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 10: skewed pipeline with short-operand bypasses. */
class SkewedBypass : public InOrderPipeline
{
  public:
    explicit SkewedBypass(PipelineConfig config);

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
    unsigned latchBoundaries(const InstrQuanta &q) const override;
};

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_MODELS_H_
