/**
 * @file
 * The paper's pipeline implementations (sections 3-6):
 *
 *  - Baseline32            conventional 32-bit 5-stage pipeline
 *  - ByteSerial            1-byte datapath, 3-byte I-fetch (Fig 3)
 *  - HalfwordSerial        16-bit granularity variant (Fig 4)
 *  - ByteSemiParallel      3B IF / 2B RF+ALU / 1B D$ (Fig 5)
 *  - ByteParallelSkewed    full-width skewed 7-stage (Fig 7)
 *  - ByteParallelCompressed full-width 5-stage, variable occupancy
 *                          (Fig 9)
 *  - SkewedBypass          skewed + short-operand stage skipping
 *                          (Fig 10)
 */

#ifndef SIGCOMP_PIPELINE_MODELS_H_
#define SIGCOMP_PIPELINE_MODELS_H_

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "pipeline/pipeline.h"

namespace sigcomp::pipeline
{

/** Enumeration of all modelled designs. */
enum class Design
{
    Baseline32,
    ByteSerial,
    HalfwordSerial,
    ByteSemiParallel,
    ByteParallelSkewed,
    ByteParallelCompressed,
    SkewedBypass,
};

/** Number of modelled designs (dense index domain of DesignTable). */
constexpr std::size_t numDesigns = 7;

/** Dense array index of a design. */
constexpr std::size_t
designIndex(Design d)
{
    return static_cast<std::size_t>(d);
}

/** Canonical short name ("baseline32", "byte-serial", ...). */
std::string designName(Design d);

/** All designs in presentation order. */
std::vector<Design> allDesigns();

/**
 * Dense Design-indexed map: a fixed array plus a presence bitmask.
 * Replaces std::map<Design, T> in the per-benchmark study rows —
 * indexing is O(1) array arithmetic instead of a red-black-tree
 * walk, and a row is one contiguous allocation. Only entries marked
 * present (by operator[]) participate in at()/size()/equality, so
 * value semantics match the map it replaces.
 */
template <typename T>
class DesignTable
{
  public:
    /** Entry for @p d, marking it present. */
    T &
    operator[](Design d)
    {
        present_ |= bit(d);
        return v_[designIndex(d)];
    }

    /** Entry for @p d; fatal when absent (parallels map::at). */
    const T &
    at(Design d) const
    {
        SC_ASSERT(contains(d), "design '", designName(d),
                  "' missing from study row");
        return v_[designIndex(d)];
    }

    bool
    contains(Design d) const
    {
        return (present_ & bit(d)) != 0;
    }

    /** Number of present entries. */
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(std::popcount(present_));
    }

    bool empty() const { return present_ == 0; }

    friend bool
    operator==(const DesignTable &a, const DesignTable &b)
    {
        if (a.present_ != b.present_)
            return false;
        for (std::size_t i = 0; i < numDesigns; ++i) {
            if ((a.present_ >> i) & 1) {
                if (!(a.v_[i] == b.v_[i]))
                    return false;
            }
        }
        return true;
    }

  private:
    static constexpr std::uint8_t
    bit(Design d)
    {
        return static_cast<std::uint8_t>(1u << designIndex(d));
    }

    std::array<T, numDesigns> v_{};
    std::uint8_t present_ = 0;
};

/**
 * Construct a pipeline model. HalfwordSerial overrides the
 * configured encoding with Half1; all other designs use
 * config.encoding (Ext3 unless an ablation asks otherwise).
 */
std::unique_ptr<InOrderPipeline> makePipeline(Design d,
                                              PipelineConfig config);

/** The conventional 32-bit in-order 5-stage pipeline. */
class Baseline32 : public SharedReplayModel<Baseline32>
{
    friend SharedReplayModel<Baseline32>;

  public:
    explicit Baseline32(PipelineConfig config);

    bool planIsPure() const override { return true; }

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 3: byte-serial datapath. */
class ByteSerial : public SharedReplayModel<ByteSerial>
{
    friend SharedReplayModel<ByteSerial>;

  public:
    explicit ByteSerial(PipelineConfig config);

    bool planIsPure() const override { return true; }

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Byte-serial at halfword granularity. */
class HalfwordSerial : public SharedReplayModel<HalfwordSerial>
{
    friend SharedReplayModel<HalfwordSerial>;

  public:
    explicit HalfwordSerial(PipelineConfig config);

    bool planIsPure() const override { return true; }

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 5: 3-byte fetch, 2-byte RF/ALU, 1-byte data cache. */
class ByteSemiParallel : public SharedReplayModel<ByteSemiParallel>
{
    friend SharedReplayModel<ByteSemiParallel>;

  public:
    explicit ByteSemiParallel(PipelineConfig config);

    bool planIsPure() const override { return true; }

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 7: full-width skewed pipeline (7 stages). */
class ByteParallelSkewed : public SharedReplayModel<ByteParallelSkewed>
{
    friend SharedReplayModel<ByteParallelSkewed>;

  public:
    explicit ByteParallelSkewed(PipelineConfig config);

    bool planIsPure() const override { return true; }

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
    unsigned latchBoundaries(const InstrQuanta &q) const override;
};

/** Fig 9: full-width five-stage pipeline, compressed occupancy. */
class ByteParallelCompressed : public SharedReplayModel<ByteParallelCompressed>
{
    friend SharedReplayModel<ByteParallelCompressed>;

  public:
    explicit ByteParallelCompressed(PipelineConfig config);

    bool planIsPure() const override { return true; }

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
};

/** Fig 10: skewed pipeline with short-operand bypasses. */
class SkewedBypass : public SharedReplayModel<SkewedBypass>
{
    friend SharedReplayModel<SkewedBypass>;

  public:
    explicit SkewedBypass(PipelineConfig config);

    bool planIsPure() const override { return true; }

  protected:
    TimingPlan plan(const cpu::DynInstr &di,
                    const InstrQuanta &q) override;
    unsigned latchBoundaries(const InstrQuanta &q) const override;
};

} // namespace sigcomp::pipeline

#endif // SIGCOMP_PIPELINE_MODELS_H_
