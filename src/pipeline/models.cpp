#include "pipeline/models.h"

#include "common/logging.h"

namespace sigcomp::pipeline
{

namespace
{

/** EX occupancy of a non-serial design. */
unsigned
exCyclesParallel(const InstrQuanta &q, const PipelineConfig &cfg)
{
    if (q.isMult)
        return cfg.multCycles;
    if (q.isDiv)
        return cfg.divCycles;
    return 1;
}

/** Fill one atomic stage (lead == dur). */
void
atomicStage(TimingPlan &p, unsigned s, unsigned dur)
{
    p.dur[s] = dur;
    p.lead[s] = dur;
}

/**
 * Fill one streamed stage: @p extra cycles of fixed latency (cache
 * misses) followed by @p chunks cycles of chunkwise production; the
 * first chunk reaches the consumer after extra + first_after.
 */
void
streamedStage(TimingPlan &p, unsigned s, Cycle extra, unsigned chunks,
              unsigned first_after = 1)
{
    p.dur[s] = static_cast<unsigned>(extra) + chunks;
    p.lead[s] = static_cast<unsigned>(extra) + first_after;
}

} // namespace

std::string
designName(Design d)
{
    switch (d) {
      case Design::Baseline32:             return "baseline32";
      case Design::ByteSerial:             return "byte-serial";
      case Design::HalfwordSerial:         return "halfword-serial";
      case Design::ByteSemiParallel:       return "byte-semi-parallel";
      case Design::ByteParallelSkewed:     return "byte-parallel-skewed";
      case Design::ByteParallelCompressed: return "byte-parallel-compressed";
      case Design::SkewedBypass:           return "skewed-bypass";
    }
    return "?";
}

std::vector<Design>
allDesigns()
{
    return {Design::Baseline32,
            Design::ByteSerial,
            Design::HalfwordSerial,
            Design::ByteSemiParallel,
            Design::ByteParallelSkewed,
            Design::ByteParallelCompressed,
            Design::SkewedBypass};
}

std::unique_ptr<InOrderPipeline>
makePipeline(Design d, PipelineConfig config)
{
    switch (d) {
      case Design::Baseline32:
        return std::make_unique<Baseline32>(std::move(config));
      case Design::ByteSerial:
        return std::make_unique<ByteSerial>(std::move(config));
      case Design::HalfwordSerial:
        return std::make_unique<HalfwordSerial>(std::move(config));
      case Design::ByteSemiParallel:
        return std::make_unique<ByteSemiParallel>(std::move(config));
      case Design::ByteParallelSkewed:
        return std::make_unique<ByteParallelSkewed>(std::move(config));
      case Design::ByteParallelCompressed:
        return std::make_unique<ByteParallelCompressed>(
            std::move(config));
      case Design::SkewedBypass:
        return std::make_unique<SkewedBypass>(std::move(config));
    }
    SC_PANIC("unknown design");
}

// --------------------------------------------------------------- Baseline32

Baseline32::Baseline32(PipelineConfig config)
    : SharedReplayModel("baseline32", std::move(config))
{
}

TimingPlan
Baseline32::plan(const cpu::DynInstr &di, const InstrQuanta &q)
{
    (void)di;
    TimingPlan p;
    p.numStages = 5;
    atomicStage(p, 0, 1 + static_cast<unsigned>(q.ifExtra));
    atomicStage(p, 1, 1);
    atomicStage(p, 2, exCyclesParallel(q, config()));
    atomicStage(p, 3, 1 + static_cast<unsigned>(q.memExtra));
    atomicStage(p, 4, 1);
    p.consumeStage = 2;
    p.resolveStage = 2;
    p.readyStage = 2;
    p.loadReadyStage = 3;
    p.streamForward = false;
    p.latchBoundaries = 4;
    return p;
}

// --------------------------------------------------------------- ByteSerial

ByteSerial::ByteSerial(PipelineConfig config)
    : SharedReplayModel("byte-serial", std::move(config))
{
}

TimingPlan
ByteSerial::plan(const cpu::DynInstr &di, const InstrQuanta &q)
{
    (void)di;
    TimingPlan p;
    p.numStages = 5;
    // Three I-cache banks fetch 3 bytes + extension bit per cycle;
    // a fourth byte (or a rippling PC) costs extra cycles.
    atomicStage(p, 0, 1 + (q.fetchBytes > 3 ? 1 : 0) + q.pcRippleExtra +
                          static_cast<unsigned>(q.ifExtra));
    // Byte-wide register file: one cycle per significant chunk.
    streamedStage(p, 1, 0, std::max(1u, q.srcChunks));
    // Byte-serial ALU; iterative mult/div occupies the stage whole.
    if (q.isMult || q.isDiv) {
        atomicStage(p, 2, exCyclesParallel(q, config()));
    } else {
        streamedStage(p, 2, 0, std::max(1u, q.exChunks));
    }
    // Byte-wide data cache bank.
    streamedStage(p, 3, q.memExtra, std::max(1u, q.memChunks));
    // Byte-wide write-back port.
    streamedStage(p, 4, 0, std::max(1u, q.resChunks));
    p.consumeStage = 2;
    p.resolveStage = 2;
    p.readyStage = 2;
    p.loadReadyStage = 3;
    p.streamForward = true;
    p.latchBoundaries = 4;
    return p;
}

// ----------------------------------------------------------- HalfwordSerial

HalfwordSerial::HalfwordSerial(PipelineConfig config)
    : SharedReplayModel("halfword-serial",
                      [](PipelineConfig c) {
                          c.encoding = sig::Encoding::Half1;
                          return c;
                      }(std::move(config)))
{
}

TimingPlan
HalfwordSerial::plan(const cpu::DynInstr &di, const InstrQuanta &q)
{
    // Identical structure to the byte-serial design; all chunk
    // quantities are already halfword-granular via the encoding.
    (void)di;
    TimingPlan p;
    p.numStages = 5;
    atomicStage(p, 0, 1 + (q.fetchBytes > 3 ? 1 : 0) + q.pcRippleExtra +
                          static_cast<unsigned>(q.ifExtra));
    streamedStage(p, 1, 0, std::max(1u, q.srcChunks));
    if (q.isMult || q.isDiv) {
        atomicStage(p, 2, exCyclesParallel(q, config()));
    } else {
        streamedStage(p, 2, 0, std::max(1u, q.exChunks));
    }
    streamedStage(p, 3, q.memExtra, std::max(1u, q.memChunks));
    streamedStage(p, 4, 0, std::max(1u, q.resChunks));
    p.consumeStage = 2;
    p.resolveStage = 2;
    p.readyStage = 2;
    p.loadReadyStage = 3;
    p.streamForward = true;
    p.latchBoundaries = 4;
    return p;
}

// --------------------------------------------------------- ByteSemiParallel

ByteSemiParallel::ByteSemiParallel(PipelineConfig config)
    : SharedReplayModel("byte-semi-parallel", std::move(config))
{
}

TimingPlan
ByteSemiParallel::plan(const cpu::DynInstr &di, const InstrQuanta &q)
{
    (void)di;
    TimingPlan p;
    p.numStages = 5;
    atomicStage(p, 0, 1 + (q.fetchBytes > 3 ? 1 : 0) + q.pcRippleExtra +
                          static_cast<unsigned>(q.ifExtra));
    // Two-byte register file and ALU, one-byte data cache (the
    // balanced 3/2/2/1 bandwidth allocation of section 5).
    streamedStage(p, 1, 0, divCeil(std::max(1u, q.srcChunks), 2));
    if (q.isMult || q.isDiv) {
        atomicStage(p, 2, exCyclesParallel(q, config()));
    } else {
        streamedStage(p, 2, 0, divCeil(std::max(1u, q.exChunks), 2));
    }
    // The byte-wide D-cache feeds two-byte consumers: the first
    // usable pair needs two cycles when more than one byte moves.
    streamedStage(p, 3, q.memExtra, std::max(1u, q.memChunks),
                  q.memChunks > 1 ? 2 : 1);
    streamedStage(p, 4, 0, divCeil(std::max(1u, q.resChunks), 2));
    p.consumeStage = 2;
    p.resolveStage = 2;
    p.readyStage = 2;
    p.loadReadyStage = 3;
    p.streamForward = true;
    p.latchBoundaries = 4;
    return p;
}

// ------------------------------------------------------- ByteParallelSkewed

ByteParallelSkewed::ByteParallelSkewed(PipelineConfig config)
    : SharedReplayModel("byte-parallel-skewed", std::move(config))
{
}

TimingPlan
ByteParallelSkewed::plan(const cpu::DynInstr &di, const InstrQuanta &q)
{
    (void)di;
    // IF | RF0 | RF123+EX0 | EX123 | MEM0 | MEM123 | WB
    //
    // Forwarding is band-aligned: a consumer's EX0 takes byte 0 from
    // the producer's EX0 output and its EX123 takes the upper bytes
    // from EX123, so dependent ALU operations never stall — the
    // in-order structural recurrence already keeps the upper bands
    // aligned. Only HI/LO (iterative unit) and loads publish later.
    TimingPlan p;
    p.numStages = 7;
    atomicStage(p, 0, 1 + static_cast<unsigned>(q.ifExtra));
    atomicStage(p, 1, 1);
    atomicStage(p, 2, 1);
    atomicStage(p, 3, exCyclesParallel(q, config()));
    atomicStage(p, 4, 1 + static_cast<unsigned>(q.memExtra));
    atomicStage(p, 5, 1);
    atomicStage(p, 6, 1);
    p.consumeStage = 2;     // EX0
    p.resolveStage = 3;     // EX123 (all bytes compared)
    p.readyStage = (q.isMult || q.isDiv) ? 3 : 2;
    p.loadReadyStage = 4;   // MEM0 delivers byte 0 + extension bits
    p.streamForward = false;
    p.latchBoundaries = 6;
    return p;
}

unsigned
ByteParallelSkewed::latchBoundaries(const InstrQuanta &q) const
{
    (void)q;
    return 6;
}

// --------------------------------------------------- ByteParallelCompressed

ByteParallelCompressed::ByteParallelCompressed(PipelineConfig config)
    : SharedReplayModel("byte-parallel-compressed", std::move(config))
{
}

TimingPlan
ByteParallelCompressed::plan(const cpu::DynInstr &di, const InstrQuanta &q)
{
    // IF | RF_lo | RF_hi | EX | MEM_lo | MEM_hi | WB
    //
    // The "one more cycle in the same stage" of Fig 9 uses separate
    // sub-banks (low byte + extension bits vs remaining bytes), so a
    // wide instruction occupies the high sub-bank while its
    // successor reads the low one: wide operands lengthen an
    // instruction's path (and hence branch penalties and load-use
    // distances) without throttling throughput. Zero-duration
    // sub-stages model the skipped sub-banks.
    TimingPlan p;
    p.numStages = 7;
    // The three I-cache banks are shared, so a fourth-byte fetch
    // does block the next instruction's fetch.
    atomicStage(p, 0, 1 + (q.fetchBytes > 3 ? 1 : 0) +
                          static_cast<unsigned>(q.ifExtra));
    atomicStage(p, 1, 1);
    atomicStage(p, 2, q.srcChunks > 1 ? 1 : 0);
    atomicStage(p, 3, exCyclesParallel(q, config()));
    atomicStage(p, 4, 1 + static_cast<unsigned>(q.memExtra));
    const bool wide_load = di.dec->isLoad && q.memChunks > 1;
    atomicStage(p, 5, wide_load ? 1 : 0);
    atomicStage(p, 6, 1);
    p.consumeStage = 3;
    p.resolveStage = 3;
    p.readyStage = 3;
    p.loadReadyStage = 5;
    p.streamForward = false;
    p.latchBoundaries = 4;
    return p;
}

// -------------------------------------------------------------- SkewedBypass

SkewedBypass::SkewedBypass(PipelineConfig config)
    : SharedReplayModel("skewed-bypass", std::move(config))
{
}

TimingPlan
SkewedBypass::plan(const cpu::DynInstr &di, const InstrQuanta &q)
{
    // The skewed pipeline plus forwarding paths that let short
    // operands *skip* the wide half-stages (EX123/MEM123): skipped
    // stages get zero duration, which shortens the instruction's
    // effective pipeline (branch penalty, load-use distance) while
    // the structural recurrence still keeps wide instructions
    // band-aligned.
    const bool narrow =
        q.srcChunks <= 1 && q.resChunks <= 1 && !q.isMult && !q.isDiv;
    TimingPlan p;
    p.numStages = 7;
    atomicStage(p, 0, 1 + static_cast<unsigned>(q.ifExtra));
    atomicStage(p, 1, 1);
    atomicStage(p, 2, 1);
    atomicStage(p, 3, narrow ? 0 : exCyclesParallel(q, config()));
    atomicStage(p, 4, 1 + static_cast<unsigned>(q.memExtra));
    const bool has_mem = di.dec->isLoad || di.dec->isStore;
    atomicStage(p, 5, (has_mem && q.memChunks > 1) ? 1 : 0);
    atomicStage(p, 6, 1);
    p.consumeStage = 2;
    p.resolveStage = 3;   // collapses to EX0 for narrow operands
    // Band-aligned forwarding as in the plain skewed design (the
    // bypass network only adds paths).
    p.readyStage = (q.isMult || q.isDiv) ? 3 : 2;
    p.loadReadyStage = 4;
    p.streamForward = false;
    p.latchBoundaries = latchBoundaries(q);
    return p;
}

unsigned
SkewedBypass::latchBoundaries(const InstrQuanta &q) const
{
    // Narrow instructions skip the wide half-stages entirely,
    // latching like the five-stage designs.
    return (q.srcChunks <= 1 && q.resChunks <= 1 && q.memChunks <= 1)
               ? 4
               : 6;
}

} // namespace sigcomp::pipeline
