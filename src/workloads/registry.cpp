#include "workloads/workload.h"

#include <functional>
#include <map>

#include "common/logging.h"

namespace sigcomp::workloads
{

namespace
{

using Factory = Workload (*)();

const std::map<std::string, Factory> &
factories()
{
    static const std::map<std::string, Factory> table = {
        {"rawcaudio", &makeRawCAudio}, {"rawdaudio", &makeRawDAudio},
        {"epic", &makeEpic},           {"unepic", &makeUnepic},
        {"g721enc", &makeG721Encode},  {"g721dec", &makeG721Decode},
        {"gsmenc", &makeGsmEncode},    {"gsmdec", &makeGsmDecode},
        {"cjpeg", &makeJpegEncode},    {"djpeg", &makeJpegDecode},
        {"mpeg2", &makeMpeg2},         {"pegwit", &makePegwit},
        {"mesa", &makeMesaXform},      {"huff", &makeHuffPack},
    };
    return table;
}

} // namespace

const std::vector<std::string> &
Suite::names()
{
    static const std::vector<std::string> order = {
        "rawcaudio", "rawdaudio", "epic",  "unepic",
        "g721enc",   "g721dec",   "gsmenc", "gsmdec",
        "cjpeg",     "djpeg",     "mpeg2", "pegwit",
    };
    return order;
}

const std::vector<std::string> &
Suite::extraNames()
{
    static const std::vector<std::string> extra = {"mesa", "huff"};
    return extra;
}

Workload
Suite::build(const std::string &name)
{
    auto it = factories().find(name);
    if (it == factories().end())
        SC_FATAL("unknown workload '", name, "'");
    return it->second();
}

std::vector<Workload>
Suite::buildAll()
{
    std::vector<Workload> out;
    out.reserve(names().size());
    for (const std::string &n : names())
        out.push_back(build(n));
    return out;
}

} // namespace sigcomp::workloads
