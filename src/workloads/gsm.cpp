/**
 * @file
 * GSM-style long-term prediction kernels. `gsmenc` is the LTP lag
 * search: per 40-sample subframe it cross-correlates the residual
 * with 81 candidate history lags and quantises a gain — the
 * multiply-accumulate hot loop of the Mediabench GSM encoder.
 * `gsmdec` is the long-term synthesis filter.
 */

#include "workloads/workload.h"

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

constexpr int subLen = 40;    ///< samples per subframe
constexpr int minLag = 40;
constexpr int maxLag = 120;
constexpr int numSub = 8;     ///< subframes processed
constexpr int histLen = maxLag + numSub * subLen;

/** Input residual/history, scaled to 14 bits so MACs fit in 32. */
std::vector<std::int16_t>
makeResidual(DWord seed)
{
    std::vector<std::int16_t> s = makeSpeech(histLen, seed);
    for (auto &v : s)
        v = static_cast<std::int16_t>(v / 4);
    return s;
}

/** Host lag search for one subframe, mirrored by the assembly. */
void
searchHost(const std::vector<std::int16_t> &sig, int base, int &best_lag,
           int &gain)
{
    long long best = -1;
    best_lag = minLag;
    for (int lag = minLag; lag <= maxLag; ++lag) {
        int corr = 0;
        for (int i = 0; i < subLen; ++i)
            corr += sig[static_cast<std::size_t>(base + i)] *
                    sig[static_cast<std::size_t>(base + i - lag)];
        if (corr > best) {
            best = corr;
            best_lag = lag;
        }
    }
    int power = 0;
    for (int i = 0; i < subLen; ++i) {
        const int h = sig[static_cast<std::size_t>(base + i - best_lag)];
        power += h * h;
    }
    const int c = static_cast<int>(best);
    if (c <= 0)
        gain = 0;
    else if (c >= power)
        gain = 3;
    else if (c >= (power >> 1))
        gain = 2;
    else if (c >= (power >> 2))
        gain = 1;
    else
        gain = 0;
}

void
emitChecksum(Assembler &a, isa::Reg value)
{
    a.sll(reg::t8, reg::s7, 1);
    a.srl(reg::t9, reg::s7, 31);
    a.or_(reg::s7, reg::t8, reg::t9);
    a.xor_(reg::s7, reg::s7, value);
}

} // namespace

Workload
makeGsmEncode()
{
    const std::vector<std::int16_t> sig = makeResidual(0x95a1);

    Word expected = 0;
    for (int f = 0; f < numSub; ++f) {
        int lag = 0, gain = 0;
        searchHost(sig, maxLag + f * subLen, lag, gain);
        expected = checksumStep(expected, static_cast<Word>(lag));
        expected = checksumStep(expected, static_cast<Word>(gain));
    }

    Assembler a;
    a.dataLabel("sig");
    a.dataHalves(sig);

    a.label("main");
    a.li(reg::s7, 0);
    a.li(reg::s0, 0); // subframe index
    a.label("frame");
    // s1 = &sig[maxLag + f*subLen] (byte address)
    a.li(reg::t0, subLen * 2);
    a.mult(reg::s0, reg::t0);
    a.mflo(reg::t0);
    a.la(reg::t1, "sig");
    a.addu(reg::t1, reg::t1, reg::t0);
    a.addiu(reg::s1, reg::t1, maxLag * 2);

    a.li(reg::s2, -1);        // best corr (so corr > best at start)
    a.li(reg::s3, minLag);    // best lag
    a.li(reg::s4, minLag);    // lag iterator
    a.label("lags");
    // t2 = &sig[base - lag]
    a.sll(reg::t0, reg::s4, 1);
    a.subu(reg::t2, reg::s1, reg::t0);
    a.move(reg::t3, reg::s1); // &sig[base]
    a.li(reg::t4, 0);         // corr
    a.li(reg::t5, subLen);
    a.label("mac");
    a.lh(reg::t6, 0, reg::t3);
    a.lh(reg::t7, 0, reg::t2);
    a.mult(reg::t6, reg::t7);
    a.mflo(reg::t6);
    a.addu(reg::t4, reg::t4, reg::t6);
    a.addiu(reg::t3, reg::t3, 2);
    a.addiu(reg::t2, reg::t2, 2);
    a.addiu(reg::t5, reg::t5, -1);
    a.bgtz(reg::t5, "mac");
    // corr > best ?
    a.slt(reg::t6, reg::s2, reg::t4);
    a.beq(reg::t6, reg::zero, "nlag");
    a.move(reg::s2, reg::t4);
    a.move(reg::s3, reg::s4);
    a.label("nlag");
    a.addiu(reg::s4, reg::s4, 1);
    a.li(reg::t6, maxLag + 1);
    a.bne(reg::s4, reg::t6, "lags");

    // Power at the best lag.
    a.sll(reg::t0, reg::s3, 1);
    a.subu(reg::t2, reg::s1, reg::t0);
    a.li(reg::t4, 0); // power
    a.li(reg::t5, subLen);
    a.label("pow");
    a.lh(reg::t6, 0, reg::t2);
    a.mult(reg::t6, reg::t6);
    a.mflo(reg::t6);
    a.addu(reg::t4, reg::t4, reg::t6);
    a.addiu(reg::t2, reg::t2, 2);
    a.addiu(reg::t5, reg::t5, -1);
    a.bgtz(reg::t5, "pow");

    // Gain quantisation against power thresholds.
    a.li(reg::s5, 0);
    a.blez(reg::s2, "gdone");
    a.slt(reg::t6, reg::s2, reg::t4); // corr < power ?
    a.li(reg::s5, 3);
    a.beq(reg::t6, reg::zero, "gdone");
    a.srl(reg::t7, reg::t4, 1);
    a.slt(reg::t6, reg::s2, reg::t7);
    a.li(reg::s5, 2);
    a.beq(reg::t6, reg::zero, "gdone");
    a.srl(reg::t7, reg::t4, 2);
    a.slt(reg::t6, reg::s2, reg::t7);
    a.li(reg::s5, 1);
    a.beq(reg::t6, reg::zero, "gdone");
    a.li(reg::s5, 0);
    a.label("gdone");

    emitChecksum(a, reg::s3);
    emitChecksum(a, reg::s5);
    a.addiu(reg::s0, reg::s0, 1);
    a.li(reg::t6, numSub);
    a.bne(reg::s0, reg::t6, "frame");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"gsmenc", a.finish("gsmenc")};
}

Workload
makeGsmDecode()
{
    const std::vector<std::int16_t> sig = makeResidual(0xd5a1);

    // Host: run the encoder search to get (lag, gain) per subframe.
    std::vector<int> lags(numSub), gains(numSub);
    for (int f = 0; f < numSub; ++f)
        searchHost(sig, maxLag + f * subLen, lags[static_cast<std::size_t>(f)],
                   gains[static_cast<std::size_t>(f)]);

    // Host synthesis: s[i] = e[i] + (num[gain] * s[i-lag]) >> 2,
    // applied in place over several passes (as the decoder's
    // post-filter chain would).
    constexpr int numPasses = 4;
    static constexpr int gainNum[4] = {0, 1, 2, 4};
    std::vector<int> synth(sig.begin(), sig.end());
    Word expected = 0;
    for (int pass = 0; pass < numPasses; ++pass) {
        for (int f = 0; f < numSub; ++f) {
            const int base = maxLag + f * subLen;
            const int lag = lags[static_cast<std::size_t>(f)];
            const int num = gainNum[static_cast<std::size_t>(
                gains[static_cast<std::size_t>(f)])];
            for (int i = 0; i < subLen; ++i) {
                const std::size_t k = static_cast<std::size_t>(base + i);
                int v = synth[k] +
                        ((num *
                          synth[k - static_cast<std::size_t>(lag)]) >> 2);
                if (v > 32767)
                    v = 32767;
                if (v < -32768)
                    v = -32768;
                synth[k] = v;
                expected = checksumStep(expected,
                                        static_cast<Word>(v) & 0xffff);
            }
        }
    }

    Assembler a;
    a.dataLabel("gain_num");
    for (int g : gainNum)
        a.dataWord(static_cast<Word>(g));
    a.dataLabel("lags");
    for (int v : lags)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("gains");
    for (int v : gains)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("sig");
    a.dataHalves(sig);

    a.label("main");
    a.li(reg::s7, 0);
    a.li(reg::s6, 0); // pass
    a.label("pass");
    a.li(reg::s0, 0); // subframe
    a.label("frame");
    // s1 = &sig[base], t0 = f*subLen*2
    a.li(reg::t0, subLen * 2);
    a.mult(reg::s0, reg::t0);
    a.mflo(reg::t0);
    a.la(reg::t1, "sig");
    a.addu(reg::t1, reg::t1, reg::t0);
    a.addiu(reg::s1, reg::t1, maxLag * 2);
    // s2 = lag (bytes), s3 = gain numerator
    a.sll(reg::t2, reg::s0, 2);
    a.la(reg::t3, "lags");
    a.addu(reg::t3, reg::t3, reg::t2);
    a.lw(reg::s2, 0, reg::t3);
    a.sll(reg::s2, reg::s2, 1);
    a.la(reg::t3, "gains");
    a.addu(reg::t3, reg::t3, reg::t2);
    a.lw(reg::t4, 0, reg::t3);
    a.sll(reg::t4, reg::t4, 2);
    a.la(reg::t3, "gain_num");
    a.addu(reg::t3, reg::t3, reg::t4);
    a.lw(reg::s3, 0, reg::t3);

    a.li(reg::s4, subLen);
    a.label("syn");
    a.subu(reg::t2, reg::s1, reg::s2); // &s[i-lag]
    a.lh(reg::t5, 0, reg::t2);
    a.mult(reg::s3, reg::t5);
    a.mflo(reg::t5);
    a.sra(reg::t5, reg::t5, 2);
    a.lh(reg::t6, 0, reg::s1);
    a.addu(reg::t6, reg::t6, reg::t5);
    a.li(reg::t7, 32767);
    a.slt(reg::t5, reg::t7, reg::t6);
    a.beq(reg::t5, reg::zero, "sc1");
    a.move(reg::t6, reg::t7);
    a.label("sc1");
    a.li(reg::t7, -32768);
    a.slt(reg::t5, reg::t6, reg::t7);
    a.beq(reg::t5, reg::zero, "sc2");
    a.move(reg::t6, reg::t7);
    a.label("sc2");
    a.sh(reg::t6, 0, reg::s1);
    a.andi(reg::t6, reg::t6, 0xffff);
    emitChecksum(a, reg::t6);
    a.addiu(reg::s1, reg::s1, 2);
    a.addiu(reg::s4, reg::s4, -1);
    a.bgtz(reg::s4, "syn");

    a.addiu(reg::s0, reg::s0, 1);
    a.li(reg::t6, numSub);
    a.bne(reg::s0, reg::t6, "frame");
    a.addiu(reg::s6, reg::s6, 1);
    a.li(reg::t6, numPasses);
    a.bne(reg::s6, reg::t6, "pass");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"gsmdec", a.finish("gsmdec")};
}

} // namespace sigcomp::workloads
