/**
 * @file
 * MPEG-2-style motion compensation kernel: half-pel bilinear
 * prediction from a reference frame plus residual add and clamp —
 * the byte-oriented hot loop of the Mediabench mpeg2 decoder.
 */

#include "workloads/workload.h"

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

constexpr unsigned refW = 64;
constexpr unsigned refH = 64;
constexpr unsigned numBlocks = 24;
constexpr unsigned blockSize = 8;

struct MotionVector
{
    int x;      ///< integer pel x of the prediction block origin
    int y;      ///< integer pel y
    int halfX;  ///< 0/1 half-pel flags
    int halfY;
};

/** Deterministic motion vectors staying inside the frame. */
std::vector<MotionVector>
makeVectors(DWord seed)
{
    Rng rng(seed);
    std::vector<MotionVector> v(numBlocks);
    for (auto &mv : v) {
        mv.x = static_cast<int>(rng.below(refW - blockSize - 1));
        mv.y = static_cast<int>(rng.below(refH - blockSize - 1));
        mv.halfX = static_cast<int>(rng.below(2));
        mv.halfY = static_cast<int>(rng.below(2));
    }
    return v;
}

/** Small signed residuals (what an IDCT emits for coded blocks). */
std::vector<std::int8_t>
makeResiduals(DWord seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> r(numBlocks * blockSize * blockSize);
    for (auto &v : r)
        v = static_cast<std::int8_t>(rng.range(-24, 24));
    return r;
}

/** Host motion compensation, mirrored by the assembly. */
Word
motionCompHost(const std::vector<std::uint8_t> &ref,
               const std::vector<MotionVector> &mvs,
               const std::vector<std::int8_t> &res)
{
    Word chk = 0;
    for (unsigned b = 0; b < numBlocks; ++b) {
        const MotionVector &mv = mvs[b];
        for (unsigned y = 0; y < blockSize; ++y) {
            for (unsigned x = 0; x < blockSize; ++x) {
                const std::size_t p =
                    static_cast<std::size_t>(mv.y + static_cast<int>(y)) *
                        refW +
                    static_cast<std::size_t>(mv.x + static_cast<int>(x));
                const int p00 = ref[p];
                const int p01 = ref[p + static_cast<std::size_t>(mv.halfX)];
                const int p10 =
                    ref[p + static_cast<std::size_t>(mv.halfY) * refW];
                const int p11 =
                    ref[p + static_cast<std::size_t>(mv.halfY) * refW +
                        static_cast<std::size_t>(mv.halfX)];
                int v = (p00 + p01 + p10 + p11 + 2) >> 2;
                v += res[b * blockSize * blockSize + y * blockSize + x];
                if (v < 0)
                    v = 0;
                if (v > 255)
                    v = 255;
                chk = checksumStep(chk, static_cast<Word>(v));
            }
        }
    }
    return chk;
}

void
emitChecksum(Assembler &a, isa::Reg value)
{
    a.sll(reg::t8, reg::s7, 1);
    a.srl(reg::t9, reg::s7, 31);
    a.or_(reg::s7, reg::t8, reg::t9);
    a.xor_(reg::s7, reg::s7, value);
}

} // namespace

Workload
makeMpeg2()
{
    const std::vector<std::uint8_t> ref = makeImage(refW, refH, 0x39e6);
    const std::vector<MotionVector> mvs = makeVectors(0x3333);
    const std::vector<std::int8_t> res = makeResiduals(0x4444);

    const Word expected = motionCompHost(ref, mvs, res);

    Assembler a;
    a.dataLabel("ref");
    a.dataBytes(ref);
    // Motion vectors flattened as words: x, y, halfX, halfY*refW.
    a.dataLabel("mvs");
    for (const MotionVector &mv : mvs) {
        a.dataWord(static_cast<Word>(mv.x));
        a.dataWord(static_cast<Word>(mv.y));
        a.dataWord(static_cast<Word>(mv.halfX));
        a.dataWord(static_cast<Word>(mv.halfY * static_cast<int>(refW)));
    }
    a.dataLabel("res");
    a.dataBytes(std::span(
        reinterpret_cast<const Byte *>(res.data()), res.size()));
    a.dataLabel("out");
    a.dataSpace(numBlocks * blockSize * blockSize);

    a.label("main");
    a.li(reg::s7, 0);
    a.li(reg::s0, 0); // block
    a.la(reg::s1, "res");
    a.la(reg::s2, "out");
    a.label("blk");
    // Load the 4-word motion record into s3=x, s4=y, s5=hx, s6=hyw.
    a.sll(reg::t0, reg::s0, 4);
    a.la(reg::t1, "mvs");
    a.addu(reg::t0, reg::t1, reg::t0);
    a.lw(reg::s3, 0, reg::t0);
    a.lw(reg::s4, 4, reg::t0);
    a.lw(reg::s5, 8, reg::t0);
    a.lw(reg::s6, 12, reg::t0);

    a.li(reg::t0, 0); // y
    a.label("my");
    a.li(reg::t1, 0); // x
    a.label("mx");
    // p = ref + (mv.y + y)*64 + mv.x + x
    a.addu(reg::t2, reg::s4, reg::t0);
    a.sll(reg::t2, reg::t2, 6);
    a.addu(reg::t2, reg::t2, reg::s3);
    a.addu(reg::t2, reg::t2, reg::t1);
    a.la(reg::t3, "ref");
    a.addu(reg::t2, reg::t3, reg::t2);
    a.lbu(reg::t3, 0, reg::t2);        // p00
    a.addu(reg::t4, reg::t2, reg::s5);
    a.lbu(reg::t4, 0, reg::t4);        // p01
    a.addu(reg::t5, reg::t2, reg::s6);
    a.lbu(reg::t6, 0, reg::t5);        // p10
    a.addu(reg::t5, reg::t5, reg::s5);
    a.lbu(reg::t5, 0, reg::t5);        // p11
    a.addu(reg::t3, reg::t3, reg::t4);
    a.addu(reg::t3, reg::t3, reg::t6);
    a.addu(reg::t3, reg::t3, reg::t5);
    a.addiu(reg::t3, reg::t3, 2);
    a.srl(reg::t3, reg::t3, 2);        // bilinear average
    a.lb(reg::t4, 0, reg::s1);         // residual
    a.addu(reg::t3, reg::t3, reg::t4);
    a.bgez(reg::t3, "mc1");
    a.li(reg::t3, 0);
    a.label("mc1");
    a.slti(reg::t6, reg::t3, 256);
    a.bne(reg::t6, reg::zero, "mc2");
    a.li(reg::t3, 255);
    a.label("mc2");
    a.sb(reg::t3, 0, reg::s2);
    emitChecksum(a, reg::t3);
    a.addiu(reg::s1, reg::s1, 1);
    a.addiu(reg::s2, reg::s2, 1);
    a.addiu(reg::t1, reg::t1, 1);
    a.slti(reg::t6, reg::t1, static_cast<std::int16_t>(blockSize));
    a.bne(reg::t6, reg::zero, "mx");
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t6, reg::t0, static_cast<std::int16_t>(blockSize));
    a.bne(reg::t6, reg::zero, "my");

    a.addiu(reg::s0, reg::s0, 1);
    a.li(reg::t6, static_cast<SWord>(numBlocks));
    a.bne(reg::s0, reg::t6, "blk");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"mpeg2", a.finish("mpeg2")};
}

} // namespace sigcomp::workloads
