/**
 * @file
 * Workload suite interface.
 *
 * The paper evaluates on Mediabench compiled to a MIPS-like ISA.
 * Mediabench binaries and inputs are not redistributable here, so
 * each suite entry is a hand-written kernel of the corresponding
 * application's hot loop, assembled for our ISA and run on synthetic
 * media data (see DESIGN.md section 2 for the substitution
 * argument). Every kernel is *self-checking*: it computes a checksum
 * of its outputs inside the simulated program and asserts it against
 * a host-computed reference, so a workload that silently mis-executes
 * fails loudly.
 */

#ifndef SIGCOMP_WORKLOADS_WORKLOAD_H_
#define SIGCOMP_WORKLOADS_WORKLOAD_H_

#include <string>
#include <vector>

#include "isa/program.h"

namespace sigcomp::workloads
{

/** A named, ready-to-run benchmark program. */
struct Workload
{
    std::string name;
    isa::Program program;
};

/** Checksum accumulator mirrored by the in-simulator code. */
constexpr Word
checksumStep(Word chk, Word value)
{
    return ((chk << 1) | (chk >> 31)) ^ value;
}

// One factory per Mediabench-style kernel.
Workload makeRawCAudio();   ///< adpcm voice encoder
Workload makeRawDAudio();   ///< adpcm voice decoder
Workload makeEpic();        ///< pyramid image analysis filter
Workload makeUnepic();      ///< pyramid image synthesis filter
Workload makeG721Encode();  ///< adaptive-predictor speech encoder
Workload makeG721Decode();  ///< adaptive-predictor speech decoder
Workload makeGsmEncode();   ///< long-term-prediction lag search
Workload makeGsmDecode();   ///< long-term synthesis filter
Workload makeJpegEncode();  ///< 8x8 forward DCT + quantisation
Workload makeJpegDecode();  ///< dequantisation + inverse DCT
Workload makeMpeg2();       ///< half-pel motion compensation
Workload makePegwit();      ///< multiprecision public-key arithmetic

// Extra kernels beyond the paper's table (robustness checks).
Workload makeMesaXform();   ///< fixed-point 3D vertex transform
Workload makeHuffPack();    ///< Huffman-style bit packing

/** Registry over all kernels. */
class Suite
{
  public:
    /** Names in canonical (paper-table) order. */
    static const std::vector<std::string> &names();

    /**
     * Held-out kernels that are *not* part of the paper's table;
     * the robustness ablation checks the conclusions transfer.
     */
    static const std::vector<std::string> &extraNames();

    /** Build one workload by name; fatal on unknown names. */
    static Workload build(const std::string &name);

    /** Build the full suite. */
    static std::vector<Workload> buildAll();
};

} // namespace sigcomp::workloads

#endif // SIGCOMP_WORKLOADS_WORKLOAD_H_
