/**
 * @file
 * G.721-style ADPCM kernels: a two-tap adaptive (sign-LMS) predictor
 * with an adaptive uniform quantiser. Encoder and decoder share the
 * reconstruction/adaptation path, as in real ADPCM, so the decoder
 * tracks the encoder exactly. Heavy on multiplies and data-dependent
 * branches — the instruction mix of the Mediabench g721 codec.
 */

#include "workloads/workload.h"

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

constexpr std::size_t numSamples = 1536;

/** Codec state shared by host encoder/decoder. */
struct State
{
    int sr1 = 0;   ///< last reconstructed sample
    int sr2 = 0;   ///< reconstructed sample before that
    int a1 = 8192; ///< predictor coefficient (Q14)
    int a2 = 0;    ///< predictor coefficient (Q14)
    int shift = 6; ///< quantiser step (power of two)
};

int
predict(const State &st)
{
    return (st.a1 * st.sr1 + st.a2 * st.sr2) >> 14;
}

/** Common reconstruction + adaptation given a quantised code. */
int
update(State &st, int q)
{
    const int dq = q << st.shift;
    int rec = predict(st) + dq;
    if (rec > 32767)
        rec = 32767;
    if (rec < -32768)
        rec = -32768;

    // Sign-LMS coefficient adaptation.
    const int s1 = ((dq ^ st.sr1) < 0) ? -32 : 32;
    st.a1 += s1;
    if (st.a1 > 24576)
        st.a1 = 24576;
    if (st.a1 < -24576)
        st.a1 = -24576;
    const int s2 = ((dq ^ st.sr2) < 0) ? -16 : 16;
    st.a2 += s2;
    if (st.a2 > 12288)
        st.a2 = 12288;
    if (st.a2 < -12288)
        st.a2 = -12288;

    // Step-size adaptation.
    if (q >= 6 || q <= -6) {
        if (st.shift < 10)
            ++st.shift;
    } else if (q >= -1 && q <= 1) {
        if (st.shift > 1)
            --st.shift;
    }

    st.sr2 = st.sr1;
    st.sr1 = rec;
    return rec;
}

int
encodeStep(State &st, int sample)
{
    const int diff = sample - predict(st);
    int q = diff >> st.shift;
    if (q > 7)
        q = 7;
    if (q < -8)
        q = -8;
    update(st, q);
    return q;
}

/** chk(s7) update; clobbers t8/t9. */
void
emitChecksum(Assembler &a, isa::Reg value)
{
    a.sll(reg::t8, reg::s7, 1);
    a.srl(reg::t9, reg::s7, 31);
    a.or_(reg::s7, reg::t8, reg::t9);
    a.xor_(reg::s7, reg::s7, value);
}

/**
 * Emit `pred = (a1*sr1 + a2*sr2) >> 14` into @p dst.
 * Register map: s1=sr1, s2=sr2, s3=a1, s4=a2. Clobbers t8, t9.
 */
void
emitPredict(Assembler &a, isa::Reg dst)
{
    a.mult(reg::s3, reg::s1);
    a.mflo(reg::t8);
    a.mult(reg::s4, reg::s2);
    a.mflo(reg::t9);
    a.addu(reg::t8, reg::t8, reg::t9);
    a.sra(dst, reg::t8, 14);
}

/**
 * Emit the shared update path. Expects q in t0 (signed), pred in
 * t1. Register map: s1=sr1, s2=sr2, s3=a1, s4=a2, s5=shift.
 * Leaves rec in t2. Clobbers t3-t7.
 *
 * @p u uniquifies labels between encoder and decoder bodies.
 */
void
emitUpdate(Assembler &a, const std::string &u)
{
    a.sllv(reg::t3, reg::t0, reg::s5); // dq = q << shift
    a.addu(reg::t2, reg::t1, reg::t3); // rec = pred + dq
    a.li(reg::t4, 32767);
    a.slt(reg::t5, reg::t4, reg::t2);
    a.beq(reg::t5, reg::zero, "ur1_" + u);
    a.move(reg::t2, reg::t4);
    a.label("ur1_" + u);
    a.li(reg::t4, -32768);
    a.slt(reg::t5, reg::t2, reg::t4);
    a.beq(reg::t5, reg::zero, "ur2_" + u);
    a.move(reg::t2, reg::t4);
    a.label("ur2_" + u);

    // a1 += sign(dq*sr1)*32, clamp +/-24576.
    a.xor_(reg::t4, reg::t3, reg::s1);
    a.li(reg::t5, 32);
    a.bgez(reg::t4, "ua1_" + u);
    a.li(reg::t5, -32);
    a.label("ua1_" + u);
    a.addu(reg::s3, reg::s3, reg::t5);
    a.li(reg::t4, 24576);
    a.slt(reg::t5, reg::t4, reg::s3);
    a.beq(reg::t5, reg::zero, "ua2_" + u);
    a.move(reg::s3, reg::t4);
    a.label("ua2_" + u);
    a.li(reg::t4, -24576);
    a.slt(reg::t5, reg::s3, reg::t4);
    a.beq(reg::t5, reg::zero, "ua3_" + u);
    a.move(reg::s3, reg::t4);
    a.label("ua3_" + u);

    // a2 += sign(dq*sr2)*16, clamp +/-12288.
    a.xor_(reg::t4, reg::t3, reg::s2);
    a.li(reg::t5, 16);
    a.bgez(reg::t4, "ub1_" + u);
    a.li(reg::t5, -16);
    a.label("ub1_" + u);
    a.addu(reg::s4, reg::s4, reg::t5);
    a.li(reg::t4, 12288);
    a.slt(reg::t5, reg::t4, reg::s4);
    a.beq(reg::t5, reg::zero, "ub2_" + u);
    a.move(reg::s4, reg::t4);
    a.label("ub2_" + u);
    a.li(reg::t4, -12288);
    a.slt(reg::t5, reg::s4, reg::t4);
    a.beq(reg::t5, reg::zero, "ub3_" + u);
    a.move(reg::s4, reg::t4);
    a.label("ub3_" + u);

    // Step adaptation: |q| >= 6 widens, |q| <= 1 narrows.
    a.li(reg::t4, 6);
    a.slt(reg::t5, reg::t0, reg::t4);  // q < 6 ?
    a.beq(reg::t5, reg::zero, "uw_" + u);
    a.li(reg::t4, -5);
    a.slt(reg::t5, reg::t0, reg::t4);  // q < -5 (i.e. <= -6) ?
    a.bne(reg::t5, reg::zero, "uw_" + u);
    // narrow band: -1 <= q <= 1 ?
    a.li(reg::t4, 2);
    a.slt(reg::t5, reg::t0, reg::t4);
    a.beq(reg::t5, reg::zero, "ud_" + u);
    a.li(reg::t4, -2);
    a.slt(reg::t5, reg::t4, reg::t0);
    a.beq(reg::t5, reg::zero, "ud_" + u);
    a.slti(reg::t5, reg::s5, 2);      // shift > 1 ?
    a.bne(reg::t5, reg::zero, "ud_" + u);
    a.addiu(reg::s5, reg::s5, -1);
    a.b("ud_" + u);
    a.label("uw_" + u);
    a.slti(reg::t5, reg::s5, 10);
    a.beq(reg::t5, reg::zero, "ud_" + u);
    a.addiu(reg::s5, reg::s5, 1);
    a.label("ud_" + u);

    a.move(reg::s2, reg::s1);
    a.move(reg::s1, reg::t2);
}

} // namespace

Workload
makeG721Encode()
{
    const std::vector<std::int16_t> speech =
        makeSpeech(numSamples, 0x9721);

    Word expected = 0;
    {
        State st;
        for (std::int16_t s : speech)
            expected = checksumStep(
                expected,
                static_cast<Word>(encodeStep(st, s)) & 0xf);
    }

    Assembler a;
    a.dataLabel("speech");
    a.dataHalves(speech);
    a.dataLabel("codes_out");
    a.dataSpace(numSamples);

    a.label("main");
    a.la(reg::gp, "codes_out");
    a.la(reg::s0, "speech");
    a.li(reg::s1, 0);    // sr1
    a.li(reg::s2, 0);    // sr2
    a.li(reg::s3, 8192); // a1
    a.li(reg::s4, 0);    // a2
    a.li(reg::s5, 6);    // shift
    a.li(reg::s6, static_cast<SWord>(numSamples));
    a.li(reg::s7, 0);    // checksum

    a.label("loop");
    a.lh(reg::t6, 0, reg::s0);
    emitPredict(a, reg::t1);
    a.subu(reg::t0, reg::t6, reg::t1); // diff
    a.srav(reg::t0, reg::t0, reg::s5); // q = diff >> shift
    a.li(reg::t4, 7);
    a.slt(reg::t5, reg::t4, reg::t0);
    a.beq(reg::t5, reg::zero, "qc1");
    a.move(reg::t0, reg::t4);
    a.label("qc1");
    a.li(reg::t4, -8);
    a.slt(reg::t5, reg::t0, reg::t4);
    a.beq(reg::t5, reg::zero, "qc2");
    a.move(reg::t0, reg::t4);
    a.label("qc2");
    emitUpdate(a, "enc");
    a.andi(reg::t4, reg::t0, 0xf);
    a.sb(reg::t4, 0, reg::gp);
    a.addiu(reg::gp, reg::gp, 1);
    emitChecksum(a, reg::t4);
    a.addiu(reg::s0, reg::s0, 2);
    a.addiu(reg::s6, reg::s6, -1);
    a.bgtz(reg::s6, "loop");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"g721enc", a.finish("g721enc")};
}

Workload
makeG721Decode()
{
    const std::vector<std::int16_t> speech =
        makeSpeech(numSamples, 0x1721);

    // Host: encode to produce the code stream, then reference-decode.
    std::vector<Byte> codes(numSamples);
    {
        State st;
        for (std::size_t i = 0; i < numSamples; ++i)
            codes[i] = static_cast<Byte>(
                encodeStep(st, speech[i]) & 0xf);
    }
    Word expected = 0;
    {
        State st;
        for (std::size_t i = 0; i < numSamples; ++i) {
            // Sign-extend the 4-bit code.
            const int q = (static_cast<int>(codes[i]) << 28) >> 28;
            const int pred = predict(st);
            const int rec = update(st, q) - 0; // rec
            (void)pred;
            expected = checksumStep(expected,
                                    static_cast<Word>(rec) & 0xffff);
        }
    }

    Assembler a;
    a.dataLabel("codes");
    a.dataBytes(codes);
    a.dataLabel("pcm_out");
    a.dataSpace(2 * numSamples);

    a.label("main");
    a.la(reg::gp, "pcm_out");
    a.la(reg::s0, "codes");
    a.li(reg::s1, 0);
    a.li(reg::s2, 0);
    a.li(reg::s3, 8192);
    a.li(reg::s4, 0);
    a.li(reg::s5, 6);
    a.li(reg::s6, static_cast<SWord>(numSamples));
    a.li(reg::s7, 0);

    a.label("loop");
    a.lbu(reg::t0, 0, reg::s0);
    a.sll(reg::t0, reg::t0, 28); // sign-extend 4-bit code
    a.sra(reg::t0, reg::t0, 28);
    emitPredict(a, reg::t1);
    emitUpdate(a, "dec");
    a.sh(reg::t2, 0, reg::gp);
    a.addiu(reg::gp, reg::gp, 2);
    a.andi(reg::t4, reg::t2, 0xffff);
    emitChecksum(a, reg::t4);
    a.addiu(reg::s0, reg::s0, 1);
    a.addiu(reg::s6, reg::s6, -1);
    a.bgtz(reg::s6, "loop");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"g721dec", a.finish("g721dec")};
}

} // namespace sigcomp::workloads
