/**
 * @file
 * EPIC-style image pyramid kernels. `epic` runs a two-level analysis
 * pass (3-tap low-pass + Haar-like high-pass with coefficient
 * quantisation); `unepic` runs the matching synthesis/clamp pass.
 * Both operate on a synthetic natural image and self-check a
 * checksum of their outputs.
 */

#include "workloads/workload.h"

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

constexpr unsigned imageW = 64;
constexpr unsigned imageH = 64;
constexpr std::size_t imageN = static_cast<std::size_t>(imageW) * imageH;

/** Host analysis pass, mirrored by the "analyze" subroutine. */
void
analyzeHost(const std::vector<std::uint8_t> &in,
            std::vector<std::uint8_t> &lo, std::vector<std::int8_t> &q,
            Word &chk)
{
    const std::size_t half = in.size() / 2;
    lo.assign(half, 0);
    q.assign(half, 0);
    for (std::size_t i = 1; i < half; ++i) {
        const int xm1 = in[2 * i - 1];
        const int x0 = in[2 * i];
        const int x1 = in[2 * i + 1];
        const int l = (xm1 + 2 * x0 + x1) >> 2;
        const int h = x0 - x1;
        const int qq = h >> 2; // arithmetic (C++20)
        lo[i] = static_cast<std::uint8_t>(l);
        q[i] = static_cast<std::int8_t>(qq);
        chk = checksumStep(chk, static_cast<Word>(l));
        chk = checksumStep(chk, static_cast<Word>(qq) & 0xff);
    }
}

/** Host synthesis pass, mirrored by the "synth" subroutine. */
void
synthHost(const std::vector<std::uint8_t> &lo,
          const std::vector<std::int8_t> &q, Word &chk)
{
    for (std::size_t i = 0; i < lo.size(); ++i) {
        const int l = lo[i];
        const int d = static_cast<int>(q[i]) << 2;
        int x0 = l + (d >> 1);
        int x1 = x0 - d;
        if (x0 < 0) x0 = 0;
        if (x0 > 255) x0 = 255;
        if (x1 < 0) x1 = 0;
        if (x1 > 255) x1 = 255;
        chk = checksumStep(chk, static_cast<Word>(x0));
        chk = checksumStep(chk, static_cast<Word>(x1));
    }
}

/** chk(s7) = rot1(chk) ^ value, clobbers t8/t9. */
void
emitChecksum(Assembler &a, isa::Reg value)
{
    a.sll(reg::t8, reg::s7, 1);
    a.srl(reg::t9, reg::s7, 31);
    a.or_(reg::s7, reg::t8, reg::t9);
    a.xor_(reg::s7, reg::s7, value);
}

/**
 * Emit the analysis subroutine:
 *   a0 = input bytes, a1 = lo output, a2 = q output,
 *   a3 = half-length. Iterates i = 1 .. a3-1. Updates s7 checksum.
 */
void
emitAnalyze(Assembler &a)
{
    a.label("analyze");
    a.li(reg::t0, 1); // i
    a.label("an_loop");
    a.sll(reg::t1, reg::t0, 1);
    a.addu(reg::t1, reg::a0, reg::t1);  // &in[2i]
    a.lbu(reg::t2, -1, reg::t1);        // xm1
    a.lbu(reg::t3, 0, reg::t1);         // x0
    a.lbu(reg::t4, 1, reg::t1);         // x1
    a.sll(reg::t5, reg::t3, 1);
    a.addu(reg::t5, reg::t5, reg::t2);
    a.addu(reg::t5, reg::t5, reg::t4);
    a.srl(reg::t5, reg::t5, 2);         // lo
    a.subu(reg::t6, reg::t3, reg::t4);  // hi
    a.sra(reg::t6, reg::t6, 2);         // q
    a.addu(reg::t7, reg::a1, reg::t0);
    a.sb(reg::t5, 0, reg::t7);
    a.addu(reg::t7, reg::a2, reg::t0);
    a.sb(reg::t6, 0, reg::t7);
    emitChecksum(a, reg::t5);
    a.andi(reg::t6, reg::t6, 0xff);
    emitChecksum(a, reg::t6);
    a.addiu(reg::t0, reg::t0, 1);
    a.bne(reg::t0, reg::a3, "an_loop");
    a.jr(reg::ra);
}

/**
 * Emit the synthesis subroutine:
 *   a0 = lo bytes, a1 = q bytes, a2 = output, a3 = count.
 * Iterates i = 0 .. a3-1. Updates s7 checksum.
 */
void
emitSynth(Assembler &a)
{
    a.label("synth");
    a.li(reg::t0, 0); // i
    a.label("sy_loop");
    a.addu(reg::t1, reg::a0, reg::t0);
    a.lbu(reg::t2, 0, reg::t1);         // lo
    a.addu(reg::t1, reg::a1, reg::t0);
    a.lb(reg::t3, 0, reg::t1);          // q (signed)
    a.sll(reg::t3, reg::t3, 2);         // d
    a.sra(reg::t4, reg::t3, 1);
    a.addu(reg::t4, reg::t2, reg::t4);  // x0
    a.subu(reg::t5, reg::t4, reg::t3);  // x1
    // clamp x0
    a.bgez(reg::t4, "sy_c1");
    a.li(reg::t4, 0);
    a.label("sy_c1");
    a.slti(reg::t6, reg::t4, 256);
    a.bne(reg::t6, reg::zero, "sy_c2");
    a.li(reg::t4, 255);
    a.label("sy_c2");
    // clamp x1
    a.bgez(reg::t5, "sy_c3");
    a.li(reg::t5, 0);
    a.label("sy_c3");
    a.slti(reg::t6, reg::t5, 256);
    a.bne(reg::t6, reg::zero, "sy_c4");
    a.li(reg::t5, 255);
    a.label("sy_c4");
    a.sll(reg::t1, reg::t0, 1);
    a.addu(reg::t1, reg::a2, reg::t1);
    a.sb(reg::t4, 0, reg::t1);
    a.sb(reg::t5, 1, reg::t1);
    emitChecksum(a, reg::t4);
    emitChecksum(a, reg::t5);
    a.addiu(reg::t0, reg::t0, 1);
    a.bne(reg::t0, reg::a3, "sy_loop");
    a.jr(reg::ra);
}

} // namespace

Workload
makeEpic()
{
    const std::vector<std::uint8_t> image = makeImage(imageW, imageH);

    // Host reference: two analysis levels.
    Word expected = 0;
    std::vector<std::uint8_t> lo1, lo2;
    std::vector<std::int8_t> q1, q2;
    analyzeHost(image, lo1, q1, expected);
    analyzeHost(lo1, lo2, q2, expected);

    Assembler a;
    a.dataLabel("image");
    a.dataBytes(image);
    a.dataLabel("lo1");
    a.dataSpace(imageN / 2);
    a.dataLabel("q1");
    a.dataSpace(imageN / 2);
    a.dataLabel("lo2");
    a.dataSpace(imageN / 4);
    a.dataLabel("q2");
    a.dataSpace(imageN / 4);

    a.label("main");
    a.li(reg::s7, 0);
    a.la(reg::a0, "image");
    a.la(reg::a1, "lo1");
    a.la(reg::a2, "q1");
    a.li(reg::a3, static_cast<SWord>(imageN / 2));
    a.jal("analyze");
    a.la(reg::a0, "lo1");
    a.la(reg::a1, "lo2");
    a.la(reg::a2, "q2");
    a.li(reg::a3, static_cast<SWord>(imageN / 4));
    a.jal("analyze");
    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    emitAnalyze(a);
    return Workload{"epic", a.finish("epic")};
}

Workload
makeUnepic()
{
    const std::vector<std::uint8_t> image =
        makeImage(imageW, imageH, 0xf00d);

    // Host: produce the coefficient planes with the analysis pass,
    // then reference-run two synthesis levels.
    Word scratch = 0;
    std::vector<std::uint8_t> lo1, lo2;
    std::vector<std::int8_t> q1, q2;
    analyzeHost(image, lo1, q1, scratch);
    analyzeHost(lo1, lo2, q2, scratch);

    Word expected = 0;
    synthHost(lo2, q2, expected);
    synthHost(lo1, q1, expected);

    Assembler a;
    a.dataLabel("lo1");
    a.dataBytes(lo1);
    a.dataLabel("q1");
    a.dataBytes(std::span(
        reinterpret_cast<const Byte *>(q1.data()), q1.size()));
    a.dataLabel("lo2");
    a.dataBytes(lo2);
    a.dataLabel("q2");
    a.dataBytes(std::span(
        reinterpret_cast<const Byte *>(q2.data()), q2.size()));
    a.dataLabel("out1");
    a.dataSpace(imageN);
    a.dataLabel("out2");
    a.dataSpace(imageN / 2);

    a.label("main");
    a.li(reg::s7, 0);
    a.la(reg::a0, "lo2");
    a.la(reg::a1, "q2");
    a.la(reg::a2, "out2");
    a.li(reg::a3, static_cast<SWord>(lo2.size()));
    a.jal("synth");
    a.la(reg::a0, "lo1");
    a.la(reg::a1, "q1");
    a.la(reg::a2, "out1");
    a.li(reg::a3, static_cast<SWord>(lo1.size()));
    a.jal("synth");
    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    emitSynth(a);
    return Workload{"unepic", a.finish("unepic")};
}

} // namespace sigcomp::workloads
