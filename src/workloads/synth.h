/**
 * @file
 * Deterministic synthetic media-data generators shared by the
 * workload kernels. Everything is integer arithmetic so host
 * reference computations are bit-exact across platforms.
 */

#ifndef SIGCOMP_WORKLOADS_SYNTH_H_
#define SIGCOMP_WORKLOADS_SYNTH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace sigcomp::workloads
{

/**
 * Speech-like 16-bit PCM: a triangle carrier whose amplitude swells
 * and decays per "syllable", plus small noise. Mostly-small samples
 * with occasional loud stretches — the operand distribution ADPCM
 * codecs actually see.
 */
inline std::vector<std::int16_t>
makeSpeech(std::size_t n, DWord seed = 0x5eed)
{
    Rng rng(seed);
    std::vector<std::int16_t> out(n);
    int amp = 600;
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 256 == 0)
            amp = 200 + static_cast<int>(rng.below(6000));
        const int phase = static_cast<int>(i % 64);
        const int tri = (phase < 32) ? (phase - 16) : (48 - phase);
        const int noise = rng.range(-64, 64);
        int v = tri * amp / 16 + noise;
        if (v > 32767)
            v = 32767;
        if (v < -32768)
            v = -32768;
        out[i] = static_cast<std::int16_t>(v);
    }
    return out;
}

/**
 * Natural-image-like 8-bit plane: smooth gradients with edges and
 * texture noise (neighbouring pixels correlate, so filter outputs
 * are small — exactly why significance compression works on image
 * code).
 */
inline std::vector<std::uint8_t>
makeImage(unsigned width, unsigned height, DWord seed = 0x1ace)
{
    Rng rng(seed);
    std::vector<std::uint8_t> img(static_cast<std::size_t>(width) *
                                  height);
    int base = 96;
    for (unsigned y = 0; y < height; ++y) {
        if (y % 16 == 0)
            base = 32 + static_cast<int>(rng.below(160));
        for (unsigned x = 0; x < width; ++x) {
            int v = base + static_cast<int>(x) / 2 +
                    ((x / 16 + y / 16) % 2 ? 24 : 0) +
                    rng.range(-6, 6);
            if (v < 0)
                v = 0;
            if (v > 255)
                v = 255;
            img[static_cast<std::size_t>(y) * width + x] =
                static_cast<std::uint8_t>(v);
        }
    }
    return img;
}

/** Uniform random 32-bit limbs for multiprecision kernels. */
inline std::vector<Word>
makeLimbs(std::size_t n, DWord seed = 0xbee5)
{
    Rng rng(seed);
    std::vector<Word> out(n);
    for (auto &w : out)
        w = rng.next32();
    return out;
}

} // namespace sigcomp::workloads

#endif // SIGCOMP_WORKLOADS_SYNTH_H_
