/**
 * @file
 * Pegwit-style multiprecision kernel: 256-bit (8-limb) modular-style
 * arithmetic — r = r * a + b (mod 2^256), iterated. Public-key code
 * is the suite's wide-operand outlier: almost every limb is a full
 * 32-bit random value, so significance compression gains little
 * here, which stresses the pipelines' long-operand paths (exactly
 * why the paper includes pegwit).
 */

#include "workloads/workload.h"

#include <array>

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

constexpr unsigned limbs = 8;
constexpr unsigned rounds = 40;

} // namespace

Workload
makePegwit()
{
    const std::vector<Word> seed_a = makeLimbs(limbs, 0xa5a5);
    const std::vector<Word> seed_b = makeLimbs(limbs, 0xb6b6);
    const std::vector<Word> seed_r = makeLimbs(limbs, 0xc7c7);

    std::array<Word, limbs> a_v{}, b_v{}, r_v{};
    for (unsigned i = 0; i < limbs; ++i) {
        a_v[i] = seed_a[i];
        b_v[i] = seed_b[i];
        r_v[i] = seed_r[i];
    }

    // Host reference: rounds of r = r*a + b mod 2^256 using a
    // straightforward 64-bit-accumulator schoolbook multiply that
    // the assembly mirrors limb-for-limb.
    auto mul_add = [&](std::array<Word, limbs> &r,
                       const std::array<Word, limbs> &aa,
                       const std::array<Word, limbs> &bb) {
        std::array<Word, limbs> acc{};
        for (unsigned i = 0; i < limbs; ++i) {
            Word carry = 0;
            for (unsigned j = 0; i + j < limbs; ++j) {
                const DWord p = static_cast<DWord>(r[i]) * aa[j];
                const Word lo = static_cast<Word>(p);
                const Word hi = static_cast<Word>(p >> 32);
                const unsigned k = i + j;
                // acc[k] += lo  (c1 = wrap)
                const Word s1 = acc[k] + lo;
                const Word c1 = (s1 < lo) ? 1 : 0;
                acc[k] = s1;
                // acc[k] += carry (c2 = wrap)
                const Word s2 = acc[k] + carry;
                const Word c2 = (s2 < carry) ? 1 : 0;
                acc[k] = s2;
                // carry out for limb k+1.
                carry = hi + c1 + c2;
            }
        }
        Word carry = 0;
        for (unsigned k = 0; k < limbs; ++k) {
            const Word s1 = acc[k] + bb[k];
            const Word c1 = (s1 < bb[k]) ? 1 : 0;
            const Word s2 = s1 + carry;
            const Word c2 = (s2 < carry) ? 1 : 0;
            acc[k] = s2;
            carry = c1 | c2;
        }
        r = acc;
    };

    std::array<Word, limbs> r_ref = r_v;
    for (unsigned it = 0; it < rounds; ++it)
        mul_add(r_ref, a_v, b_v);
    Word expected = 0;
    for (unsigned i = 0; i < limbs; ++i)
        expected = checksumStep(expected, r_ref[i]);

    Assembler a;
    a.dataLabel("op_a");
    a.dataWords(std::span(seed_a.data(), seed_a.size()));
    a.dataLabel("op_b");
    a.dataWords(std::span(seed_b.data(), seed_b.size()));
    a.dataLabel("val_r");
    a.dataWords(std::span(seed_r.data(), seed_r.size()));
    a.dataLabel("acc");
    a.dataSpace(limbs * 4);

    a.label("main");
    a.li(reg::s7, 0);           // round counter
    a.la(reg::s0, "val_r");
    a.la(reg::s1, "op_a");
    a.la(reg::s2, "op_b");
    a.la(reg::s3, "acc");

    a.label("round");
    // Zero the accumulator.
    a.li(reg::t0, 0);
    a.label("z");
    a.sll(reg::t1, reg::t0, 2);
    a.addu(reg::t1, reg::s3, reg::t1);
    a.sw(reg::zero, 0, reg::t1);
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t1, reg::t0, static_cast<std::int16_t>(limbs));
    a.bne(reg::t1, reg::zero, "z");

    // Schoolbook multiply: i in s4, j in s5, carry in s6.
    a.li(reg::s4, 0);
    a.label("mi");
    a.li(reg::s5, 0);
    a.li(reg::s6, 0); // carry
    a.label("mj");
    // t0 = r[i], t1 = a[j]
    a.sll(reg::t0, reg::s4, 2);
    a.addu(reg::t0, reg::s0, reg::t0);
    a.lw(reg::t0, 0, reg::t0);
    a.sll(reg::t1, reg::s5, 2);
    a.addu(reg::t1, reg::s1, reg::t1);
    a.lw(reg::t1, 0, reg::t1);
    a.multu(reg::t0, reg::t1);
    a.mflo(reg::t2); // lo
    a.mfhi(reg::t3); // hi
    // k = i + j; t4 = &acc[k]
    a.addu(reg::t4, reg::s4, reg::s5);
    a.sll(reg::t4, reg::t4, 2);
    a.addu(reg::t4, reg::s3, reg::t4);
    a.lw(reg::t5, 0, reg::t4);
    // acc[k] += lo (c1 in t6)
    a.addu(reg::t5, reg::t5, reg::t2);
    a.sltu(reg::t6, reg::t5, reg::t2);
    // acc[k] += carry (c2 in t7)
    a.addu(reg::t5, reg::t5, reg::s6);
    a.sltu(reg::t7, reg::t5, reg::s6);
    a.sw(reg::t5, 0, reg::t4);
    // carry = hi + c1 + c2
    a.addu(reg::s6, reg::t3, reg::t6);
    a.addu(reg::s6, reg::s6, reg::t7);
    // next j while i + j < limbs
    a.addiu(reg::s5, reg::s5, 1);
    a.addu(reg::t6, reg::s4, reg::s5);
    a.slti(reg::t6, reg::t6, static_cast<std::int16_t>(limbs));
    a.bne(reg::t6, reg::zero, "mj");
    a.addiu(reg::s4, reg::s4, 1);
    a.slti(reg::t6, reg::s4, static_cast<std::int16_t>(limbs));
    a.bne(reg::t6, reg::zero, "mi");

    // acc += b, ripple carry, and copy back into r.
    a.li(reg::t0, 0);  // k
    a.li(reg::s6, 0);  // carry
    a.label("ab");
    a.sll(reg::t1, reg::t0, 2);
    a.addu(reg::t2, reg::s3, reg::t1); // &acc[k]
    a.addu(reg::t3, reg::s2, reg::t1); // &b[k]
    a.lw(reg::t4, 0, reg::t2);
    a.lw(reg::t5, 0, reg::t3);
    a.addu(reg::t4, reg::t4, reg::t5);
    a.sltu(reg::t6, reg::t4, reg::t5); // c1
    a.addu(reg::t4, reg::t4, reg::s6);
    a.sltu(reg::t7, reg::t4, reg::s6); // c2
    a.or_(reg::s6, reg::t6, reg::t7);
    a.sw(reg::t4, 0, reg::t2);
    a.addu(reg::t9, reg::s0, reg::t1); // &r[k]
    a.sw(reg::t4, 0, reg::t9);
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t6, reg::t0, static_cast<std::int16_t>(limbs));
    a.bne(reg::t6, reg::zero, "ab");

    a.addiu(reg::s7, reg::s7, 1);
    a.li(reg::t6, static_cast<SWord>(rounds));
    a.bne(reg::s7, reg::t6, "round");

    // Checksum r.
    a.li(reg::s7, 0);
    a.li(reg::t0, 0);
    a.label("ck");
    a.sll(reg::t1, reg::t0, 2);
    a.addu(reg::t1, reg::s0, reg::t1);
    a.lw(reg::t2, 0, reg::t1);
    a.sll(reg::t8, reg::s7, 1);
    a.srl(reg::t9, reg::s7, 31);
    a.or_(reg::s7, reg::t8, reg::t9);
    a.xor_(reg::s7, reg::s7, reg::t2);
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t6, reg::t0, static_cast<std::int16_t>(limbs));
    a.bne(reg::t6, reg::zero, "ck");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"pegwit", a.finish("pegwit")};
}

} // namespace sigcomp::workloads
