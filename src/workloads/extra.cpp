/**
 * @file
 * Extra kernels beyond the paper's Mediabench set, used by the
 * robustness ablation (do the paper's conclusions transfer to
 * kernels the models were not tuned on?):
 *
 *  - `mesa`: fixed-point 3D vertex transform (Mediabench's mesa/
 *    osdemo hot loop): Q16 4x4 matrix x vec4 products with clamping,
 *    multiply-heavy with wide intermediates.
 *  - `huff`: Huffman-style bit packing (the entropy-coder loop of
 *    image/video codecs): table-driven variable-length codes ORed
 *    into a bit buffer — shift/mask-heavy with narrow values.
 */

#include "workloads/workload.h"

#include <array>

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

void
emitChecksum(Assembler &a, isa::Reg value)
{
    a.sll(reg::t8, reg::s7, 1);
    a.srl(reg::t9, reg::s7, 31);
    a.or_(reg::s7, reg::t8, reg::t9);
    a.xor_(reg::s7, reg::s7, value);
}

} // namespace

Workload
makeMesaXform()
{
    constexpr unsigned numVerts = 512;

    // Q12 rotation-ish matrix with small translation (fits int16
    // immediates when loaded from memory as words).
    constexpr std::array<int, 16> matrix = {
        3547,  -2048, 0,     128,   // row 0
        2048,  3547,  0,     -64,   //
        0,     0,     4096,  32,    //
        0,     0,     0,     4096,  // row 3 (homogeneous)
    };

    // Vertices: Q4 coordinates in a +/-2048 box, w = 16 (1.0 in Q4).
    Rng rng(0x3e5a);
    std::vector<SWord> verts(numVerts * 4);
    for (unsigned v = 0; v < numVerts; ++v) {
        verts[v * 4 + 0] = rng.range(-2048, 2048);
        verts[v * 4 + 1] = rng.range(-2048, 2048);
        verts[v * 4 + 2] = rng.range(-2048, 2048);
        verts[v * 4 + 3] = 16;
    }

    // Host reference, mirrored by the assembly.
    Word expected = 0;
    for (unsigned v = 0; v < numVerts; ++v) {
        for (int row = 0; row < 4; ++row) {
            int acc = 0;
            for (int k = 0; k < 4; ++k)
                acc += matrix[static_cast<std::size_t>(row * 4 + k)] *
                       verts[v * 4 + static_cast<unsigned>(k)];
            int out = acc >> 12; // back to Q4
            if (out > 32767)
                out = 32767;
            if (out < -32768)
                out = -32768;
            expected =
                checksumStep(expected, static_cast<Word>(out) & 0xffff);
        }
    }

    Assembler a;
    a.dataLabel("matrix");
    for (int m : matrix)
        a.dataWord(static_cast<Word>(m));
    a.dataLabel("verts");
    for (SWord v : verts)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("out");
    a.dataSpace(numVerts * 4 * 2);

    a.label("main");
    a.li(reg::s7, 0);
    a.la(reg::s0, "verts");
    a.la(reg::s1, "out");
    a.li(reg::s2, numVerts);
    a.label("vert");
    a.la(reg::s3, "matrix");
    a.li(reg::s4, 4); // row counter
    a.label("row");
    a.li(reg::t0, 0); // acc
    a.li(reg::t1, 0); // k
    a.label("dot");
    a.sll(reg::t2, reg::t1, 2);
    a.addu(reg::t3, reg::s3, reg::t2);
    a.lw(reg::t3, 0, reg::t3);        // matrix[row][k]
    a.addu(reg::t4, reg::s0, reg::t2);
    a.lw(reg::t4, 0, reg::t4);        // vert[k]
    a.mult(reg::t3, reg::t4);
    a.mflo(reg::t3);
    a.addu(reg::t0, reg::t0, reg::t3);
    a.addiu(reg::t1, reg::t1, 1);
    a.slti(reg::t2, reg::t1, 4);
    a.bne(reg::t2, reg::zero, "dot");
    a.sra(reg::t0, reg::t0, 12);
    // Clamp to int16.
    a.li(reg::t2, 32767);
    a.slt(reg::t3, reg::t2, reg::t0);
    a.beq(reg::t3, reg::zero, "c1");
    a.move(reg::t0, reg::t2);
    a.label("c1");
    a.li(reg::t2, -32768);
    a.slt(reg::t3, reg::t0, reg::t2);
    a.beq(reg::t3, reg::zero, "c2");
    a.move(reg::t0, reg::t2);
    a.label("c2");
    a.sh(reg::t0, 0, reg::s1);
    a.addiu(reg::s1, reg::s1, 2);
    a.andi(reg::t0, reg::t0, 0xffff);
    emitChecksum(a, reg::t0);
    a.addiu(reg::s3, reg::s3, 16); // next matrix row
    a.addiu(reg::s4, reg::s4, -1);
    a.bgtz(reg::s4, "row");
    a.addiu(reg::s0, reg::s0, 16); // next vertex
    a.addiu(reg::s2, reg::s2, -1);
    a.bgtz(reg::s2, "vert");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"mesa", a.finish("mesa")};
}

Workload
makeHuffPack()
{
    constexpr unsigned numSymbols = 4096;

    // Canonical-ish VLC table over 16 symbols: short codes for
    // frequent small symbols.
    constexpr std::array<Word, 16> codes = {
        0b0,      0b10,      0b110,      0b1110,
        0b11110,  0b111110,  0b1111110,  0b11111110,
        0b111111110, 0b1111111110, 0b11111111110, 0b111111111100,
        0b111111111101, 0b111111111110, 0b1111111111110,
        0b1111111111111,
    };
    constexpr std::array<Word, 16> lengths = {1, 2,  3,  4,  5,  6,
                                              7, 8,  9,  10, 11, 12,
                                              12, 12, 13, 13};

    // Geometric-ish symbol stream (small symbols dominate, as DCT
    // coefficient magnitudes do).
    Rng rng(0x4aff);
    std::vector<Byte> symbols(numSymbols);
    for (auto &s : symbols) {
        const double u = rng.uniform();
        unsigned v = 0;
        double p = 0.42;
        double acc = p;
        while (v < 15 && u > acc) {
            ++v;
            p *= 0.62;
            acc += p;
        }
        s = static_cast<Byte>(v);
    }

    // Host reference bit packer (32-bit buffer, flush words).
    Word expected = 0;
    {
        Word buffer = 0;
        unsigned filled = 0;
        for (Byte s : symbols) {
            const Word code = codes[s];
            const unsigned len = lengths[s];
            for (unsigned b = len; b-- > 0;) {
                buffer = (buffer << 1) | ((code >> b) & 1);
                if (++filled == 32) {
                    expected = checksumStep(expected, buffer);
                    buffer = 0;
                    filled = 0;
                }
            }
        }
        expected = checksumStep(expected, buffer);
    }

    Assembler a;
    a.dataLabel("codes");
    for (Word c : codes)
        a.dataWord(c);
    a.dataLabel("lengths");
    for (Word l : lengths)
        a.dataWord(l);
    a.dataLabel("symbols");
    a.dataBytes(symbols);

    a.label("main");
    a.li(reg::s7, 0);               // checksum
    a.la(reg::s0, "symbols");
    a.li(reg::s1, numSymbols);
    a.li(reg::s2, 0);               // buffer
    a.li(reg::s3, 0);               // filled
    a.la(reg::s4, "codes");
    a.la(reg::s5, "lengths");
    a.label("sym");
    a.lbu(reg::t0, 0, reg::s0);
    a.sll(reg::t1, reg::t0, 2);
    a.addu(reg::t2, reg::s4, reg::t1);
    a.lw(reg::t2, 0, reg::t2);      // code
    a.addu(reg::t3, reg::s5, reg::t1);
    a.lw(reg::t3, 0, reg::t3);      // len (bit counter)
    a.label("bit");
    a.addiu(reg::t3, reg::t3, -1);
    a.srlv(reg::t4, reg::t2, reg::t3);
    a.andi(reg::t4, reg::t4, 1);
    a.sll(reg::s2, reg::s2, 1);
    a.or_(reg::s2, reg::s2, reg::t4);
    a.addiu(reg::s3, reg::s3, 1);
    a.li(reg::t5, 32);
    a.bne(reg::s3, reg::t5, "nofl");
    emitChecksum(a, reg::s2);
    a.li(reg::s2, 0);
    a.li(reg::s3, 0);
    a.label("nofl");
    a.bgtz(reg::t3, "bit");
    a.addiu(reg::s0, reg::s0, 1);
    a.addiu(reg::s1, reg::s1, -1);
    a.bgtz(reg::s1, "sym");
    emitChecksum(a, reg::s2);

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"huff", a.finish("huff")};
}

} // namespace sigcomp::workloads
