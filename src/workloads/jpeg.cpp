/**
 * @file
 * JPEG-style transform kernels: 8x8 integer DCT + quantisation over
 * a 32x32 synthetic image (`cjpeg`) and the matching dequantise +
 * inverse transform + level-shift/clamp (`djpeg`). The transform is
 * a straightforward fixed-point (Q8) matrix DCT, which exercises the
 * multiply/accumulate and table-walk behaviour of the Mediabench
 * JPEG codecs.
 */

#include "workloads/workload.h"

#include <cmath>

#include <array>

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

constexpr unsigned imgW = 32;
constexpr unsigned imgH = 32;
constexpr unsigned blocks = (imgW / 8) * (imgH / 8);

/** Quantiser shift table (coarser for high frequencies). */
constexpr int quantShift[64] = {
    3, 3, 3, 4, 4, 5, 5, 5, 3, 3, 4, 4, 5, 5, 5, 6,
    3, 4, 4, 5, 5, 5, 6, 6, 4, 4, 5, 5, 5, 6, 6, 6,
    4, 5, 5, 5, 6, 6, 6, 7, 5, 5, 5, 6, 6, 6, 7, 7,
    5, 5, 6, 6, 6, 7, 7, 7, 5, 6, 6, 6, 7, 7, 7, 7,
};

/** Q8 DCT-II basis matrix, c[k][n] = round(s_k cos((2n+1)k pi/16)). */
std::array<int, 64>
dctMatrix()
{
    std::array<int, 64> c{};
    for (int k = 0; k < 8; ++k) {
        const double s = (k == 0) ? std::sqrt(1.0 / 8.0)
                                  : std::sqrt(2.0 / 8.0);
        for (int n = 0; n < 8; ++n) {
            c[static_cast<std::size_t>(k * 8 + n)] =
                static_cast<int>(std::lround(
                    256.0 * s *
                    std::cos((2 * n + 1) * k * M_PI / 16.0)));
        }
    }
    return c;
}

/** Host forward transform of one block, mirrored by the assembly. */
void
forwardHost(const int in[64], const std::array<int, 64> &c, int out[64])
{
    int tmp[64];
    // Rows: tmp[k][n] -> actually tmp[r][k] = sum_n in[r][n]*c[k][n].
    for (int r = 0; r < 8; ++r)
        for (int k = 0; k < 8; ++k) {
            int acc = 0;
            for (int n = 0; n < 8; ++n)
                acc += in[r * 8 + n] *
                       c[static_cast<std::size_t>(k * 8 + n)];
            tmp[r * 8 + k] = acc >> 8;
        }
    // Columns.
    for (int k = 0; k < 8; ++k)
        for (int col = 0; col < 8; ++col) {
            int acc = 0;
            for (int n = 0; n < 8; ++n)
                acc += tmp[n * 8 + col] *
                       c[static_cast<std::size_t>(k * 8 + n)];
            out[k * 8 + col] = acc >> 8;
        }
}

/** Extract (level-shifted) block @p b of the image into @p out. */
void
extractBlock(const std::vector<std::uint8_t> &img, unsigned b, int out[64])
{
    const unsigned bx = (b % (imgW / 8)) * 8;
    const unsigned by = (b / (imgW / 8)) * 8;
    for (unsigned y = 0; y < 8; ++y)
        for (unsigned x = 0; x < 8; ++x)
            out[y * 8 + x] =
                static_cast<int>(
                    img[(by + y) * imgW + bx + x]) - 128;
}

void
emitChecksum(Assembler &a, isa::Reg value)
{
    a.sll(reg::t8, reg::s7, 1);
    a.srl(reg::t9, reg::s7, 31);
    a.or_(reg::s7, reg::t8, reg::t9);
    a.xor_(reg::s7, reg::s7, value);
}

/**
 * Emit an 8x8 fixed-point matrix multiply subroutine "mm8":
 *   out[k*8+j] = (sum_n A[k*8+n] * B[n*8+j]) >> 8
 * with a0 = A, a1 = B, a2 = out (all word arrays).
 */
void
emitMatMul(Assembler &a)
{
    a.label("mm8");
    a.li(reg::t0, 0); // k
    a.label("mm_k");
    a.li(reg::t1, 0); // j
    a.label("mm_j");
    a.li(reg::t2, 0); // acc
    a.li(reg::t3, 0); // n
    a.sll(reg::t4, reg::t0, 5);        // k*8*4
    a.addu(reg::t4, reg::a0, reg::t4); // &A[k*8]
    a.sll(reg::t5, reg::t1, 2);
    a.addu(reg::t5, reg::a1, reg::t5); // &B[0*8+j]
    a.label("mm_n");
    a.lw(reg::t6, 0, reg::t4);
    a.lw(reg::t7, 0, reg::t5);
    a.mult(reg::t6, reg::t7);
    a.mflo(reg::t6);
    a.addu(reg::t2, reg::t2, reg::t6);
    a.addiu(reg::t4, reg::t4, 4);
    a.addiu(reg::t5, reg::t5, 32);
    a.addiu(reg::t3, reg::t3, 1);
    a.slti(reg::t6, reg::t3, 8);
    a.bne(reg::t6, reg::zero, "mm_n");
    a.sra(reg::t2, reg::t2, 8);
    a.sll(reg::t6, reg::t0, 5);
    a.sll(reg::t7, reg::t1, 2);
    a.addu(reg::t6, reg::t6, reg::t7);
    a.addu(reg::t6, reg::a2, reg::t6);
    a.sw(reg::t2, 0, reg::t6);
    a.addiu(reg::t1, reg::t1, 1);
    a.slti(reg::t6, reg::t1, 8);
    a.bne(reg::t6, reg::zero, "mm_j");
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t6, reg::t0, 8);
    a.bne(reg::t6, reg::zero, "mm_k");
    a.jr(reg::ra);
}

} // namespace

Workload
makeJpegEncode()
{
    const std::vector<std::uint8_t> img = makeImage(imgW, imgH, 0x0e9c);
    const std::array<int, 64> c = dctMatrix();

    // Host reference: per block, F = C * X * C^T via
    // T = X * C^T (row pass) then F = C * T — but expressed as two
    // mm8 calls with the same kernel the assembly uses:
    //   T = C * X^T is awkward; instead the assembly stores each
    //   block COLUMN-major as "X^T" so that
    //     T   = mm8(C, X^T)   -> T[k][j] = sum C[k][n] X[j][n]
    //     F^T = mm8(X'?, ...) — see below; we simply mirror
    // the exact sequence in C++ here to keep both sides identical.
    auto mm8 = [](const int *A, const int *B, int *out) {
        for (int k = 0; k < 8; ++k)
            for (int j = 0; j < 8; ++j) {
                int acc = 0;
                for (int n = 0; n < 8; ++n)
                    acc += A[k * 8 + n] * B[n * 8 + j];
                out[k * 8 + j] = acc >> 8;
            }
    };

    Word expected = 0;
    {
        int x[64], xt[64], t1[64], t1t[64], f[64];
        for (unsigned b = 0; b < blocks; ++b) {
            extractBlock(img, b, x);
            // Transpose so mm8(C, X^T) computes the row pass.
            for (int i = 0; i < 8; ++i)
                for (int j = 0; j < 8; ++j)
                    xt[i * 8 + j] = x[j * 8 + i];
            mm8(c.data(), xt, t1);      // t1 = C * X^T
            for (int i = 0; i < 8; ++i)
                for (int j = 0; j < 8; ++j)
                    t1t[i * 8 + j] = t1[j * 8 + i];
            mm8(c.data(), t1t, f);      // f = C * (C*X^T)^T = C X C^T
            for (int i = 0; i < 64; ++i) {
                const int q = f[i] >> quantShift[i];
                expected = checksumStep(expected,
                                        static_cast<Word>(q) & 0xffff);
            }
        }
    }

    Assembler a;
    a.dataLabel("dctmat");
    for (int v : c)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("qshift");
    for (int v : quantShift)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("image");
    a.dataBytes(img);
    a.dataLabel("blockx");  // X^T as words
    a.dataSpace(64 * 4);
    a.dataLabel("tmp1");
    a.dataSpace(64 * 4);
    a.dataLabel("tmp1t");
    a.dataSpace(64 * 4);
    a.dataLabel("coef");
    a.dataSpace(64 * 4);

    a.label("main");
    a.li(reg::s7, 0);
    a.li(reg::s0, 0); // block index
    a.label("blk");
    // Load block b into blockx transposed, level-shifted by -128.
    // bx = (b % 4)*8, by = (b / 4)*8  (imgW/8 == 4).
    a.andi(reg::t0, reg::s0, 3);
    a.sll(reg::t0, reg::t0, 3);  // bx
    a.srl(reg::t1, reg::s0, 2);
    a.sll(reg::t1, reg::t1, 3);  // by
    a.li(reg::t2, 0);            // y
    a.label("ld_y");
    a.li(reg::t3, 0);            // x
    a.label("ld_x");
    a.addu(reg::t4, reg::t1, reg::t2); // by+y
    a.sll(reg::t4, reg::t4, 5);        // *imgW (32)
    a.addu(reg::t5, reg::t0, reg::t3); // bx+x
    a.addu(reg::t4, reg::t4, reg::t5);
    a.la(reg::t5, "image");
    a.addu(reg::t4, reg::t5, reg::t4);
    a.lbu(reg::t4, 0, reg::t4);
    a.addiu(reg::t4, reg::t4, -128);
    // Store into blockx[x*8 + y] (transposed).
    a.sll(reg::t5, reg::t3, 5);
    a.sll(reg::t6, reg::t2, 2);
    a.addu(reg::t5, reg::t5, reg::t6);
    a.la(reg::t6, "blockx");
    a.addu(reg::t5, reg::t6, reg::t5);
    a.sw(reg::t4, 0, reg::t5);
    a.addiu(reg::t3, reg::t3, 1);
    a.slti(reg::t6, reg::t3, 8);
    a.bne(reg::t6, reg::zero, "ld_x");
    a.addiu(reg::t2, reg::t2, 1);
    a.slti(reg::t6, reg::t2, 8);
    a.bne(reg::t6, reg::zero, "ld_y");

    // t1 = C * X^T
    a.la(reg::a0, "dctmat");
    a.la(reg::a1, "blockx");
    a.la(reg::a2, "tmp1");
    a.jal("mm8");
    // Transpose tmp1 into tmp1t.
    a.li(reg::t0, 0);
    a.label("tr_i");
    a.li(reg::t1, 0);
    a.label("tr_j");
    a.sll(reg::t2, reg::t1, 5);
    a.sll(reg::t3, reg::t0, 2);
    a.addu(reg::t2, reg::t2, reg::t3);
    a.la(reg::t3, "tmp1");
    a.addu(reg::t2, reg::t3, reg::t2);
    a.lw(reg::t2, 0, reg::t2);        // tmp1[j][i]
    a.sll(reg::t4, reg::t0, 5);
    a.sll(reg::t5, reg::t1, 2);
    a.addu(reg::t4, reg::t4, reg::t5);
    a.la(reg::t5, "tmp1t");
    a.addu(reg::t4, reg::t5, reg::t4);
    a.sw(reg::t2, 0, reg::t4);        // tmp1t[i][j]
    a.addiu(reg::t1, reg::t1, 1);
    a.slti(reg::t6, reg::t1, 8);
    a.bne(reg::t6, reg::zero, "tr_j");
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t6, reg::t0, 8);
    a.bne(reg::t6, reg::zero, "tr_i");
    // coef = C * tmp1t
    a.la(reg::a0, "dctmat");
    a.la(reg::a1, "tmp1t");
    a.la(reg::a2, "coef");
    a.jal("mm8");

    // Quantise + checksum.
    a.la(reg::t0, "coef");
    a.la(reg::t1, "qshift");
    a.li(reg::t2, 64);
    a.label("qz");
    a.lw(reg::t3, 0, reg::t0);
    a.lw(reg::t4, 0, reg::t1);
    a.srav(reg::t3, reg::t3, reg::t4);
    a.andi(reg::t3, reg::t3, 0xffff);
    emitChecksum(a, reg::t3);
    a.addiu(reg::t0, reg::t0, 4);
    a.addiu(reg::t1, reg::t1, 4);
    a.addiu(reg::t2, reg::t2, -1);
    a.bgtz(reg::t2, "qz");

    a.addiu(reg::s0, reg::s0, 1);
    a.li(reg::t6, static_cast<SWord>(blocks));
    a.bne(reg::s0, reg::t6, "blk");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    emitMatMul(a);
    return Workload{"cjpeg", a.finish("cjpeg")};
}

Workload
makeJpegDecode()
{
    const std::vector<std::uint8_t> img = makeImage(imgW, imgH, 0xde9c);
    const std::array<int, 64> c = dctMatrix();

    // Host: forward-transform + quantise to produce the coefficient
    // stream the decoder consumes.
    std::vector<SWord> qcoef(static_cast<std::size_t>(blocks) * 64);
    {
        int x[64], f[64];
        for (unsigned b = 0; b < blocks; ++b) {
            extractBlock(img, b, x);
            forwardHost(x, c, f);
            for (int i = 0; i < 64; ++i)
                qcoef[b * 64 + static_cast<unsigned>(i)] =
                    f[i] >> quantShift[i];
        }
    }

    // The assembly implements the inverse transform as two mm8 calls
    // with the TRANSPOSED basis matrix: with ct = transpose(c),
    //   t1 = mm8(ct, F^T);  pix = mm8(ct, t1^T)  ==  C^T F C
    // up to the intermediate >>8 rounding, so the host reference must
    // mirror that exact sequence (inverseHost() rounds differently
    // and is only used for sanity in tests).
    std::array<int, 64> ct{};
    for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
            ct[static_cast<std::size_t>(i * 8 + j)] =
                c[static_cast<std::size_t>(j * 8 + i)];

    auto mm8 = [](const int *A, const int *B, int *out) {
        for (int k = 0; k < 8; ++k)
            for (int j = 0; j < 8; ++j) {
                int acc = 0;
                for (int n = 0; n < 8; ++n)
                    acc += A[k * 8 + n] * B[n * 8 + j];
                out[k * 8 + j] = acc >> 8;
            }
    };

    Word expected = 0;
    {
        int f[64], ft[64], t1[64], t1t[64], pix[64];
        for (unsigned b = 0; b < blocks; ++b) {
            for (int i = 0; i < 64; ++i)
                f[i] = qcoef[b * 64 + static_cast<unsigned>(i)]
                       << quantShift[i];
            for (int i = 0; i < 8; ++i)
                for (int j = 0; j < 8; ++j)
                    ft[i * 8 + j] = f[j * 8 + i];
            mm8(ct.data(), ft, t1);
            for (int i = 0; i < 8; ++i)
                for (int j = 0; j < 8; ++j)
                    t1t[i * 8 + j] = t1[j * 8 + i];
            mm8(ct.data(), t1t, pix);
            for (int i = 0; i < 64; ++i) {
                int v = pix[i] + 128;
                if (v < 0)
                    v = 0;
                if (v > 255)
                    v = 255;
                expected = checksumStep(expected, static_cast<Word>(v));
            }
        }
    }

    Assembler a;
    a.dataLabel("dctmatT");
    for (int v : ct)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("qshift");
    for (int v : quantShift)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("qcoef");
    for (SWord v : qcoef)
        a.dataWord(static_cast<Word>(v));
    a.dataLabel("blockf"); // F^T
    a.dataSpace(64 * 4);
    a.dataLabel("tmp1");
    a.dataSpace(64 * 4);
    a.dataLabel("tmp1t");
    a.dataSpace(64 * 4);
    a.dataLabel("pix");
    a.dataSpace(64 * 4);

    a.label("main");
    a.li(reg::s7, 0);
    a.li(reg::s0, 0); // block
    a.label("blk");
    // Dequantise block into blockf transposed.
    a.sll(reg::t0, reg::s0, 8);      // b*64*4
    a.la(reg::t1, "qcoef");
    a.addu(reg::s1, reg::t1, reg::t0); // &qcoef[b*64]
    a.li(reg::t0, 0);                // i (row)
    a.label("dq_i");
    a.li(reg::t1, 0);                // j (col)
    a.label("dq_j");
    a.sll(reg::t2, reg::t0, 5);
    a.sll(reg::t3, reg::t1, 2);
    a.addu(reg::t2, reg::t2, reg::t3);
    a.addu(reg::t2, reg::s1, reg::t2);
    a.lw(reg::t4, 0, reg::t2);       // q[i][j]
    a.sll(reg::t2, reg::t0, 5);
    a.sll(reg::t3, reg::t1, 2);
    a.addu(reg::t2, reg::t2, reg::t3);
    a.la(reg::t3, "qshift");
    a.addu(reg::t2, reg::t3, reg::t2);
    a.lw(reg::t5, 0, reg::t2);       // shift[i][j]
    a.sllv(reg::t4, reg::t4, reg::t5); // dequantised f
    // store to blockf[j][i]
    a.sll(reg::t2, reg::t1, 5);
    a.sll(reg::t3, reg::t0, 2);
    a.addu(reg::t2, reg::t2, reg::t3);
    a.la(reg::t3, "blockf");
    a.addu(reg::t2, reg::t3, reg::t2);
    a.sw(reg::t4, 0, reg::t2);
    a.addiu(reg::t1, reg::t1, 1);
    a.slti(reg::t6, reg::t1, 8);
    a.bne(reg::t6, reg::zero, "dq_j");
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t6, reg::t0, 8);
    a.bne(reg::t6, reg::zero, "dq_i");

    // t1 = C^T * F^T
    a.la(reg::a0, "dctmatT");
    a.la(reg::a1, "blockf");
    a.la(reg::a2, "tmp1");
    a.jal("mm8");
    // transpose tmp1 -> tmp1t
    a.li(reg::t0, 0);
    a.label("tr_i");
    a.li(reg::t1, 0);
    a.label("tr_j");
    a.sll(reg::t2, reg::t1, 5);
    a.sll(reg::t3, reg::t0, 2);
    a.addu(reg::t2, reg::t2, reg::t3);
    a.la(reg::t3, "tmp1");
    a.addu(reg::t2, reg::t3, reg::t2);
    a.lw(reg::t2, 0, reg::t2);
    a.sll(reg::t4, reg::t0, 5);
    a.sll(reg::t5, reg::t1, 2);
    a.addu(reg::t4, reg::t4, reg::t5);
    a.la(reg::t5, "tmp1t");
    a.addu(reg::t4, reg::t5, reg::t4);
    a.sw(reg::t2, 0, reg::t4);
    a.addiu(reg::t1, reg::t1, 1);
    a.slti(reg::t6, reg::t1, 8);
    a.bne(reg::t6, reg::zero, "tr_j");
    a.addiu(reg::t0, reg::t0, 1);
    a.slti(reg::t6, reg::t0, 8);
    a.bne(reg::t6, reg::zero, "tr_i");
    // pix = C^T * tmp1t
    a.la(reg::a0, "dctmatT");
    a.la(reg::a1, "tmp1t");
    a.la(reg::a2, "pix");
    a.jal("mm8");

    // Level shift, clamp, checksum.
    a.la(reg::t0, "pix");
    a.li(reg::t2, 64);
    a.label("px");
    a.lw(reg::t3, 0, reg::t0);
    a.addiu(reg::t3, reg::t3, 128);
    a.bgez(reg::t3, "px1");
    a.li(reg::t3, 0);
    a.label("px1");
    a.slti(reg::t6, reg::t3, 256);
    a.bne(reg::t6, reg::zero, "px2");
    a.li(reg::t3, 255);
    a.label("px2");
    emitChecksum(a, reg::t3);
    a.addiu(reg::t0, reg::t0, 4);
    a.addiu(reg::t2, reg::t2, -1);
    a.bgtz(reg::t2, "px");

    a.addiu(reg::s0, reg::s0, 1);
    a.li(reg::t6, static_cast<SWord>(blocks));
    a.bne(reg::s0, reg::t6, "blk");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    emitMatMul(a);
    return Workload{"djpeg", a.finish("djpeg")};
}

} // namespace sigcomp::workloads
