/**
 * @file
 * IMA ADPCM voice codec kernels — the suite's stand-ins for the
 * Mediabench rawcaudio/rawdaudio programs. The in-simulator assembly
 * mirrors the host reference step for step; both checksum their
 * outputs and the program asserts equality before exiting.
 */

#include "workloads/workload.h"

#include <array>

#include "isa/assembler.h"
#include "workloads/synth.h"

namespace sigcomp::workloads
{

namespace
{

using isa::Assembler;
namespace reg = isa::reg;

constexpr std::array<int, 89> stepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,
    17,    19,    21,    23,    25,    28,    31,    34,    37,
    41,    45,    50,    55,    60,    66,    73,    80,    88,
    97,    107,   118,   130,   143,   157,   173,   190,   209,
    230,   253,   279,   307,   337,   371,   408,   449,   494,
    544,   598,   658,   724,   796,   876,   963,   1060,  1166,
    1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,
    3024,  3327,  3660,  4026,  4428,  4871,  5358,  5894,  6484,
    7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr std::array<int, 8> indexTable = {-1, -1, -1, -1, 2, 4, 6, 8};

/** One host-side encoder step (mirrored by the assembly). */
std::uint8_t
encodeStep(int &predicted, int &index, int sample)
{
    int step = stepTable[static_cast<std::size_t>(index)];
    int diff = sample - predicted;
    int sign = 0;
    if (diff < 0) {
        sign = 8;
        diff = -diff;
    }
    int vpdiff = step >> 3;
    int delta = 0;
    if (diff >= step) {
        delta = 4;
        diff -= step;
        vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
        delta |= 2;
        diff -= step;
        vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
        delta |= 1;
        vpdiff += step;
    }
    predicted += sign ? -vpdiff : vpdiff;
    if (predicted > 32767)
        predicted = 32767;
    if (predicted < -32768)
        predicted = -32768;
    delta |= sign;
    index += indexTable[static_cast<std::size_t>(delta & 7)];
    if (index < 0)
        index = 0;
    if (index > 88)
        index = 88;
    return static_cast<std::uint8_t>(delta);
}

/** One host-side decoder step (mirrored by the assembly). */
int
decodeStep(int &predicted, int &index, std::uint8_t delta)
{
    const int step = stepTable[static_cast<std::size_t>(index)];
    int vpdiff = step >> 3;
    if (delta & 4)
        vpdiff += step;
    if (delta & 2)
        vpdiff += step >> 1;
    if (delta & 1)
        vpdiff += step >> 2;
    predicted += (delta & 8) ? -vpdiff : vpdiff;
    if (predicted > 32767)
        predicted = 32767;
    if (predicted < -32768)
        predicted = -32768;
    index += indexTable[static_cast<std::size_t>(delta & 7)];
    if (index < 0)
        index = 0;
    if (index > 88)
        index = 88;
    return predicted;
}

/** Emit the two step/index tables into the data segment. */
void
emitTables(Assembler &a)
{
    a.dataAlign(4);
    a.dataLabel("steptab");
    for (int s : stepTable)
        a.dataWord(static_cast<Word>(s));
    a.dataLabel("indextab");
    for (int d : indexTable)
        a.dataWord(static_cast<Word>(d));
}

/**
 * Shared clamp-predicted / update-index assembly tail used by both
 * codec directions. Expects: s3 = predicted, s4 = index,
 * s6 = indextab base, t5 = 4-bit code. Clobbers t6-t8.
 */
void
emitClampAndIndexUpdate(Assembler &a, const std::string &uniq)
{
    a.li(reg::t6, 32767);
    a.slt(reg::t7, reg::t6, reg::s3);
    a.beq(reg::t7, reg::zero, "ncl_hi_" + uniq);
    a.move(reg::s3, reg::t6);
    a.label("ncl_hi_" + uniq);
    a.li(reg::t6, -32768);
    a.slt(reg::t7, reg::s3, reg::t6);
    a.beq(reg::t7, reg::zero, "ncl_lo_" + uniq);
    a.move(reg::s3, reg::t6);
    a.label("ncl_lo_" + uniq);

    a.andi(reg::t8, reg::t5, 7);
    a.sll(reg::t8, reg::t8, 2);
    a.addu(reg::t8, reg::s6, reg::t8);
    a.lw(reg::t8, 0, reg::t8);
    a.addu(reg::s4, reg::s4, reg::t8);
    a.bgez(reg::s4, "nidx_lo_" + uniq);
    a.li(reg::s4, 0);
    a.label("nidx_lo_" + uniq);
    a.li(reg::t6, 88);
    a.slt(reg::t7, reg::t6, reg::s4);
    a.beq(reg::t7, reg::zero, "nidx_hi_" + uniq);
    a.move(reg::s4, reg::t6);
    a.label("nidx_hi_" + uniq);
}

/** Emit chk = rot1(chk) ^ value with chk in s7. */
void
emitChecksum(Assembler &a, isa::Reg value)
{
    a.sll(reg::t6, reg::s7, 1);
    a.srl(reg::t7, reg::s7, 31);
    a.or_(reg::s7, reg::t6, reg::t7);
    a.xor_(reg::s7, reg::s7, value);
}

} // namespace

Workload
makeRawCAudio()
{
    constexpr std::size_t n = 2048;
    const std::vector<std::int16_t> samples = makeSpeech(n);

    // Host reference pass: expected checksum of the code stream.
    Word expected = 0;
    {
        int predicted = 0, index = 0;
        for (std::int16_t s : samples)
            expected = checksumStep(
                expected, encodeStep(predicted, index, s));
    }

    Assembler a;
    emitTables(a);
    a.dataLabel("samples");
    a.dataHalves(samples);
    a.dataLabel("codes");
    a.dataSpace(n);

    a.label("main");
    a.la(reg::s0, "samples");
    a.la(reg::s1, "codes");
    a.li(reg::s2, static_cast<SWord>(n));
    a.li(reg::s3, 0); // predicted
    a.li(reg::s4, 0); // index
    a.la(reg::s5, "steptab");
    a.la(reg::s6, "indextab");
    a.li(reg::s7, 0); // checksum

    a.label("loop");
    a.lh(reg::t0, 0, reg::s0);       // sample
    a.sll(reg::t9, reg::s4, 2);
    a.addu(reg::t9, reg::s5, reg::t9);
    a.lw(reg::t1, 0, reg::t9);       // step
    a.subu(reg::t2, reg::t0, reg::s3); // diff
    a.li(reg::t3, 0);                // sign
    a.bgez(reg::t2, "pos");
    a.li(reg::t3, 8);
    a.subu(reg::t2, reg::zero, reg::t2);
    a.label("pos");
    a.srl(reg::t4, reg::t1, 3);      // vpdiff = step >> 3
    a.li(reg::t5, 0);                // delta
    a.slt(reg::t6, reg::t2, reg::t1);
    a.bne(reg::t6, reg::zero, "q2");
    a.li(reg::t5, 4);
    a.subu(reg::t2, reg::t2, reg::t1);
    a.addu(reg::t4, reg::t4, reg::t1);
    a.label("q2");
    a.srl(reg::t1, reg::t1, 1);
    a.slt(reg::t6, reg::t2, reg::t1);
    a.bne(reg::t6, reg::zero, "q3");
    a.ori(reg::t5, reg::t5, 2);
    a.subu(reg::t2, reg::t2, reg::t1);
    a.addu(reg::t4, reg::t4, reg::t1);
    a.label("q3");
    a.srl(reg::t1, reg::t1, 1);
    a.slt(reg::t6, reg::t2, reg::t1);
    a.bne(reg::t6, reg::zero, "q4");
    a.ori(reg::t5, reg::t5, 1);
    a.addu(reg::t4, reg::t4, reg::t1);
    a.label("q4");
    a.beq(reg::t3, reg::zero, "padd");
    a.subu(reg::s3, reg::s3, reg::t4);
    a.b("pclamp");
    a.label("padd");
    a.addu(reg::s3, reg::s3, reg::t4);
    a.label("pclamp");
    a.or_(reg::t5, reg::t5, reg::t3); // delta |= sign
    emitClampAndIndexUpdate(a, "enc");
    a.sb(reg::t5, 0, reg::s1);
    emitChecksum(a, reg::t5);
    a.addiu(reg::s0, reg::s0, 2);
    a.addiu(reg::s1, reg::s1, 1);
    a.addiu(reg::s2, reg::s2, -1);
    a.bgtz(reg::s2, "loop");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"rawcaudio", a.finish("rawcaudio")};
}

Workload
makeRawDAudio()
{
    constexpr std::size_t n = 2048;
    const std::vector<std::int16_t> samples = makeSpeech(n, 0xdeed);

    // Host: encode to produce the input code stream, then decode to
    // derive the expected PCM checksum.
    std::vector<Byte> codes(n);
    {
        int predicted = 0, index = 0;
        for (std::size_t i = 0; i < n; ++i)
            codes[i] = encodeStep(predicted, index, samples[i]);
    }
    Word expected = 0;
    {
        int predicted = 0, index = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const int pcm = decodeStep(predicted, index, codes[i]);
            expected = checksumStep(expected,
                                    static_cast<Word>(pcm) & 0xffff);
        }
    }

    Assembler a;
    emitTables(a);
    a.dataLabel("codes");
    a.dataBytes(codes);
    a.dataLabel("pcmout");
    a.dataSpace(2 * n);

    a.label("main");
    a.la(reg::s0, "codes");
    a.la(reg::s1, "pcmout");
    a.li(reg::s2, static_cast<SWord>(n));
    a.li(reg::s3, 0); // predicted
    a.li(reg::s4, 0); // index
    a.la(reg::s5, "steptab");
    a.la(reg::s6, "indextab");
    a.li(reg::s7, 0); // checksum

    a.label("loop");
    a.lbu(reg::t5, 0, reg::s0);      // delta
    a.sll(reg::t9, reg::s4, 2);
    a.addu(reg::t9, reg::s5, reg::t9);
    a.lw(reg::t1, 0, reg::t9);       // step
    a.srl(reg::t4, reg::t1, 3);      // vpdiff = step >> 3
    a.andi(reg::t6, reg::t5, 4);
    a.beq(reg::t6, reg::zero, "d2");
    a.addu(reg::t4, reg::t4, reg::t1);
    a.label("d2");
    a.andi(reg::t6, reg::t5, 2);
    a.beq(reg::t6, reg::zero, "d3");
    a.srl(reg::t7, reg::t1, 1);
    a.addu(reg::t4, reg::t4, reg::t7);
    a.label("d3");
    a.andi(reg::t6, reg::t5, 1);
    a.beq(reg::t6, reg::zero, "d4");
    a.srl(reg::t7, reg::t1, 2);
    a.addu(reg::t4, reg::t4, reg::t7);
    a.label("d4");
    a.andi(reg::t6, reg::t5, 8);
    a.beq(reg::t6, reg::zero, "dadd");
    a.subu(reg::s3, reg::s3, reg::t4);
    a.b("dclamp");
    a.label("dadd");
    a.addu(reg::s3, reg::s3, reg::t4);
    a.label("dclamp");
    emitClampAndIndexUpdate(a, "dec");
    a.sh(reg::s3, 0, reg::s1);
    a.andi(reg::t9, reg::s3, 0xffff);
    emitChecksum(a, reg::t9);
    a.addiu(reg::s0, reg::s0, 1);
    a.addiu(reg::s1, reg::s1, 2);
    a.addiu(reg::s2, reg::s2, -1);
    a.bgtz(reg::s2, "loop");

    a.move(reg::a0, reg::s7);
    a.li(reg::a1, static_cast<SWord>(expected));
    a.assertEq();
    a.exitProgram();
    return Workload{"rawdaudio", a.finish("rawdaudio")};
}

} // namespace sigcomp::workloads
