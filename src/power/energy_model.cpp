#include "power/energy_model.h"

namespace sigcomp::power
{

namespace
{

/** pJ of switching @p ff femtofarads at @p vdd volts. */
double
capEnergyPj(double ff, double vdd)
{
    // E = 1/2 C V^2; fF * V^2 -> fJ, /1000 -> pJ.
    return 0.5 * ff * vdd * vdd / 1000.0;
}

} // namespace

double
arrayEnergyPj(const TechParams &tech, double bits)
{
    // Each accessed bit swings one bit line and one sense amp; the
    // word-line share is folded in per bit attached to the row.
    const double ff =
        bits * (tech.bitLineFf + tech.senseAmpFf + tech.wordLineFfPerBit);
    return capEnergyPj(ff, tech.vdd);
}

double
logicEnergyPj(const TechParams &tech, double bits)
{
    return capEnergyPj(bits * tech.logicFfPerBit, tech.vdd);
}

double
latchEnergyPj(const TechParams &tech, double bits)
{
    return capEnergyPj(bits * (tech.latchFfPerBit + tech.clockFfPerBit),
                       tech.vdd);
}

EnergyReport
buildEnergyReport(const pipeline::ActivityTotals &activity,
                  const TechParams &tech)
{
    EnergyReport rep;
    auto add = [&](const std::string &name,
                   const pipeline::BitPair &bits, auto model) {
        StructureEnergy se;
        se.structure = name;
        se.compressedPj =
            model(tech, static_cast<double>(bits.compressed));
        se.baselinePj = model(tech, static_cast<double>(bits.baseline));
        rep.totalCompressedPj += se.compressedPj;
        rep.totalBaselinePj += se.baselinePj;
        rep.structures.push_back(se);
    };

    add("icache", activity.fetch, arrayEnergyPj);
    add("rf-read", activity.rfRead, arrayEnergyPj);
    add("rf-write", activity.rfWrite, arrayEnergyPj);
    add("alu", activity.alu, logicEnergyPj);
    add("dcache-data", activity.dcData, arrayEnergyPj);
    add("dcache-tag", activity.dcTag, arrayEnergyPj);
    add("pc-inc", activity.pcInc, logicEnergyPj);
    add("latches", activity.latch, latchEnergyPj);
    return rep;
}

void
writeEnergyReportJson(std::FILE *f, const EnergyReport &rep)
{
    std::fprintf(f,
                 "\"compressed_pj\": %.2f, \"baseline_pj\": %.2f, "
                 "\"saving_percent\": %.2f, \"structures\": [",
                 rep.totalCompressedPj, rep.totalBaselinePj,
                 rep.savingPercent());
    for (std::size_t s = 0; s < rep.structures.size(); ++s) {
        const StructureEnergy &se = rep.structures[s];
        std::fprintf(f,
                     "%s{\"structure\": \"%s\", \"compressed_pj\": "
                     "%.2f, \"baseline_pj\": %.2f, "
                     "\"saving_percent\": %.2f}",
                     s ? ", " : "", se.structure.c_str(),
                     se.compressedPj, se.baselinePj, se.savingPercent());
    }
    std::fprintf(f, "]");
}

double
bankSplitEnergyRatio(const TechParams &tech, unsigned rows,
                     unsigned bits_per_row, unsigned banks)
{
    // Unsplit: one access drives a word line of bits_per_row bits
    // and bits_per_row bit-line/sense-amp pairs.
    const double full_ff =
        bits_per_row * (tech.wordLineFfPerBit + tech.bitLineFf +
                        tech.senseAmpFf);

    // Split: each bank is 1/banks as wide; reading the full word
    // takes `banks` accesses, each switching 1/banks of the columns.
    // Bit-line length (hence capacitance per column) is set by the
    // row count, which is unchanged by vertical splitting.
    const unsigned bank_bits = bits_per_row / banks;
    const double bank_ff =
        bank_bits * (tech.wordLineFfPerBit + tech.bitLineFf +
                     tech.senseAmpFf);
    (void)rows;
    return (banks * bank_ff) / full_ff;
}

} // namespace sigcomp::power
