/**
 * @file
 * Wattch-style analytic dynamic-energy model.
 *
 * The paper stops at activity ("The final quantification of energy
 * requires a further detailed circuit-level analysis"); this module
 * takes the step its conclusion points to with a simple
 * capacitance-based model: each structure access switches word
 * lines, bit lines and sense amps whose capacitance scales with the
 * array geometry, and dynamic energy is E = 0.5 * C * Vdd^2 * A
 * with A the bit activity measured by the pipeline models.
 *
 * It also encodes the paper's section-2.4 bank-splitting argument:
 * a byte-wide bank has ~1/4 the word-line, bit-line, and sense-amp
 * capacitance of a word-wide array, so four byte accesses cost about
 * one word access.
 */

#ifndef SIGCOMP_POWER_ENERGY_MODEL_H_
#define SIGCOMP_POWER_ENERGY_MODEL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"
#include "pipeline/pipeline.h"

namespace sigcomp::power
{

/** Technology parameters (0.25um-class defaults, embedded core). */
struct TechParams
{
    double vdd = 1.8;            ///< volts
    double bitLineFf = 35.0;     ///< fF switched per bit-line per row hit
    double wordLineFfPerBit = 1.8; ///< fF of word line per attached bit
    double senseAmpFf = 12.0;    ///< fF equivalent per sense amp firing
    double latchFfPerBit = 9.0;  ///< fF per latch bit toggled
    double logicFfPerBit = 14.0; ///< fF per datapath bit operated
    double clockFfPerBit = 4.0;  ///< fF of clock load per gated bit
};

/**
 * Energy of switching @p bits bits of a storage array (word line +
 * bit line + sense amp components), in picojoules.
 */
double arrayEnergyPj(const TechParams &tech, double bits);

/** Energy of @p bits bits of random logic switching, in pJ. */
double logicEnergyPj(const TechParams &tech, double bits);

/** Energy of @p bits latch bits (data + local clock), in pJ. */
double latchEnergyPj(const TechParams &tech, double bits);

/** One row of the per-structure energy report. */
struct StructureEnergy
{
    std::string structure;
    double compressedPj = 0.0;
    double baselinePj = 0.0;

    double
    savingPercent() const
    {
        return baselinePj > 0.0
                   ? 100.0 * (1.0 - compressedPj / baselinePj)
                   : 0.0;
    }
};

/** Whole-pipeline energy summary derived from activity totals. */
struct EnergyReport
{
    std::vector<StructureEnergy> structures;
    double totalCompressedPj = 0.0;
    double totalBaselinePj = 0.0;

    double
    savingPercent() const
    {
        return totalBaselinePj > 0.0
                   ? 100.0 * (1.0 - totalCompressedPj / totalBaselinePj)
                   : 0.0;
    }
};

/**
 * Convert a pipeline run's activity totals into energy.
 * Storage structures (caches, RF) use the array model; the ALU uses
 * the logic model; latches use the latch model.
 */
EnergyReport buildEnergyReport(const pipeline::ActivityTotals &activity,
                               const TechParams &tech = TechParams());

/**
 * Emit @p rep's fields as JSON — `"compressed_pj"`, `"baseline_pj"`,
 * `"saving_percent"`, and a `"structures"` array — WITHOUT the
 * enclosing braces, so callers can splice them into their own
 * objects (the SuiteReport energy rows do).
 */
void writeEnergyReportJson(std::FILE *f, const EnergyReport &rep);

/**
 * Section 2.4 check: per-access energy of a register file split
 * into @p banks equal banks, relative to the unsplit array, when a
 * full-width value is read one bank at a time. Close to 1.0 — the
 * multiple narrow accesses are not an energy penalty.
 */
double bankSplitEnergyRatio(const TechParams &tech, unsigned rows,
                            unsigned bits_per_row, unsigned banks);

} // namespace sigcomp::power

#endif // SIGCOMP_POWER_ENERGY_MODEL_H_
