/**
 * @file
 * Content-addressed report cache for sigcompd.
 *
 * Key = the plan fingerprint (SHA-256 over the canonical wire form,
 * analysis/plan_json.h) combined with the trace-store fingerprint
 * (SHA-256 over the store's segment inventory), so a hit is provably
 * "same experiment over the same data": the engine is deterministic
 * in everything but wall time, and wall time is carried inside the
 * cached bytes unchanged — byte-identical replies are the contract
 * the CI smoke job diffs on.
 *
 * The cache is tenant-agnostic on purpose: tenants share one
 * read-only trace store, so a report leaks nothing a tenant could
 * not compute itself by submitting the same plan.
 *
 * Bounded two ways — entry count and total cached bytes — with LRU
 * eviction; both appear in /statsz via the daemon.* metrics
 * (report_cache_hits / _misses / _insertions / _evictions counters,
 * _entries / _bytes gauges) registered on the daemon's telemetry
 * registry.
 */

#ifndef SIGCOMP_SERVER_REPORT_CACHE_H_
#define SIGCOMP_SERVER_REPORT_CACHE_H_

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/telemetry.h"

namespace sigcomp::server
{

/** Bounded, thread-safe LRU cache of serialized suite reports. */
class ReportCache
{
  public:
    /**
     * @p registry outlives the cache and hosts the daemon.* metrics.
     * Caps of 0 disable the corresponding bound check... which no
     * caller wants; the daemon always passes both.
     */
    ReportCache(std::size_t maxEntries, std::size_t maxBytes,
                telemetry::Registry *registry);

    /**
     * Look up @p key. On a hit, copies the cached bytes into @p body,
     * promotes the entry to most-recently-used and counts a hit;
     * counts a miss otherwise.
     */
    bool lookup(const std::string &key, std::string *body)
        SIGCOMP_EXCLUDES(mu_);

    /**
     * Insert (or refresh) @p key -> @p body, then evict from the LRU
     * tail until both caps hold again. A body alone exceeding the
     * byte cap is not cached.
     */
    void insert(const std::string &key, const std::string &body)
        SIGCOMP_EXCLUDES(mu_);

    std::size_t entries() const SIGCOMP_EXCLUDES(mu_);
    std::size_t bytes() const SIGCOMP_EXCLUDES(mu_);

  private:
    struct Entry
    {
        std::string key;
        std::string body;
    };

    void evictToCaps() SIGCOMP_REQUIRES(mu_);
    void publishGauges() SIGCOMP_REQUIRES(mu_);

    const std::size_t maxEntries_;
    const std::size_t maxBytes_;

    mutable Mutex mu_;
    /** Front = most recently used. */
    std::list<Entry> lru_ SIGCOMP_GUARDED_BY(mu_);
    std::unordered_map<std::string, std::list<Entry>::iterator>
        index_ SIGCOMP_GUARDED_BY(mu_);
    std::size_t bytes_ SIGCOMP_GUARDED_BY(mu_) = 0;

    telemetry::Counter &hits_;
    telemetry::Counter &misses_;
    telemetry::Counter &insertions_;
    telemetry::Counter &evictions_;
    telemetry::Gauge &entriesGauge_;
    telemetry::Gauge &bytesGauge_;
};

} // namespace sigcomp::server

#endif // SIGCOMP_SERVER_REPORT_CACHE_H_
