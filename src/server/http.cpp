#include "server/http.h"

#include <algorithm>
#include <cctype>

namespace sigcomp::server
{

namespace
{

bool
isTokenChar(char c)
{
    // RFC 9110 tchar, the characters legal in methods/header names.
    static constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
    const unsigned char u = static_cast<unsigned char>(c);
    return std::isalnum(u) != 0 ||
           kExtra.find(c) != std::string_view::npos;
}

bool
isPrintableAscii(char c)
{
    const unsigned char u = static_cast<unsigned char>(c);
    return u >= 0x20 && u < 0x7F;
}

char
asciiLower(char c)
{
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a')
                                  : c;
}

/** Strict decimal parse for Content-Length: digits only, capped. */
bool
parseContentLength(std::string_view s, std::size_t *out)
{
    if (s.empty() || s.size() > 10)
        return false;
    std::size_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    *out = v;
    return true;
}

const char *
reasonFor(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 411:
        return "Length Required";
    case 413:
        return "Payload Too Large";
    case 501:
        return "Not Implemented";
    case 503:
        return "Service Unavailable";
    case 505:
        return "HTTP Version Not Supported";
    default:
        return "Error";
    }
}

} // namespace

const char *
httpErrorKindName(HttpErrorKind k)
{
    switch (k) {
    case HttpErrorKind::None:
        return "none";
    case HttpErrorKind::Syntax:
        return "syntax";
    case HttpErrorKind::TooLarge:
        return "too-large";
    case HttpErrorKind::UnsupportedMethod:
        return "unsupported-method";
    case HttpErrorKind::UnsupportedVersion:
        return "unsupported-version";
    case HttpErrorKind::UnsupportedEncoding:
        return "unsupported-encoding";
    }
    return "none";
}

std::string
HttpError::render() const
{
    return std::string(httpErrorKindName(kind)) + " at byte " +
           std::to_string(offset) + ": " + message;
}

const std::string *
HttpRequest::header(std::string_view name) const
{
    for (const auto &[key, value] : headers) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

HttpRequestParser::Status
HttpRequestParser::fail(HttpErrorKind kind, std::size_t offset,
                        std::string message)
{
    phase_ = Phase::Failed;
    error_.kind = kind;
    error_.offset = offset;
    error_.message = std::move(message);
    buf_.clear();
    return Status::Error;
}

HttpRequestParser::Status
HttpRequestParser::consume(std::string_view bytes)
{
    if (phase_ == Phase::Failed)
        return Status::Error;
    if (phase_ == Phase::Complete) {
        if (bytes.empty())
            return Status::Done;
        return fail(HttpErrorKind::Syntax, base_ + buf_.size(),
                    "bytes after complete request (no pipelining)");
    }
    buf_.append(bytes);
    return parseBuffered();
}

HttpRequestParser::Status
HttpRequestParser::parseBuffered()
{
    // Line phases: split on CRLF, rejecting bare LF / bare CR early
    // so a malformed prefix never waits forever for "more bytes".
    while (phase_ == Phase::RequestLine || phase_ == Phase::Headers) {
        const std::size_t lf = buf_.find('\n');
        const std::size_t searched =
            (lf == std::string::npos) ? buf_.size() : lf + 1;
        const std::size_t cap = (phase_ == Phase::RequestLine)
                                    ? kMaxRequestLineBytes
                                    : kMaxHeaderLineBytes;
        if (lf == std::string::npos) {
            if (buf_.size() > cap) {
                return fail(HttpErrorKind::TooLarge, base_ + cap,
                            phase_ == Phase::RequestLine
                                ? "request line exceeds cap"
                                : "header line exceeds cap");
            }
            return Status::NeedMore;
        }
        if (lf + 1 > cap) {
            return fail(HttpErrorKind::TooLarge, base_ + cap,
                        phase_ == Phase::RequestLine
                            ? "request line exceeds cap"
                            : "header line exceeds cap");
        }
        if (lf == 0 || buf_[lf - 1] != '\r') {
            return fail(HttpErrorKind::Syntax, base_ + lf,
                        "bare LF (CRLF required)");
        }
        const std::string_view line(buf_.data(), lf - 1);
        const std::size_t lineOffset = base_;
        if (const std::size_t cr = line.find('\r');
            cr != std::string_view::npos) {
            return fail(HttpErrorKind::Syntax, lineOffset + cr,
                        "stray CR inside line");
        }
        if (phase_ == Phase::RequestLine) {
            if (!parseRequestLine(line, lineOffset))
                return Status::Error;
            phase_ = Phase::Headers;
        } else if (line.empty()) {
            if (!finishHeaders(lineOffset))
                return Status::Error;
            phase_ = Phase::Body;
        } else if (!parseHeaderLine(line, lineOffset)) {
            return Status::Error;
        }
        buf_.erase(0, searched);
        base_ += searched;
    }

    if (phase_ == Phase::Body) {
        if (buf_.size() < contentLength_)
            return Status::NeedMore;
        request_.body = buf_.substr(0, contentLength_);
        const std::string_view extra(buf_.data() + contentLength_,
                                     buf_.size() - contentLength_);
        if (!extra.empty()) {
            return fail(HttpErrorKind::Syntax,
                        base_ + contentLength_,
                        "bytes after complete request (no pipelining)");
        }
        base_ += buf_.size();
        buf_.clear();
        phase_ = Phase::Complete;
    }
    return Status::Done;
}

bool
HttpRequestParser::parseRequestLine(std::string_view line,
                                    std::size_t offset)
{
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0) {
        fail(HttpErrorKind::Syntax, offset,
             "request line is not 'METHOD target HTTP/x.y'");
        return false;
    }
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1 ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
        fail(HttpErrorKind::Syntax, offset,
             "request line is not 'METHOD target HTTP/x.y'");
        return false;
    }
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target =
        line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);
    if (!std::all_of(method.begin(), method.end(), isTokenChar)) {
        fail(HttpErrorKind::Syntax, offset, "malformed method token");
        return false;
    }
    if (target[0] != '/' ||
        !std::all_of(target.begin(), target.end(),
                     isPrintableAscii)) {
        fail(HttpErrorKind::Syntax, offset + sp1 + 1,
             "request target must be a printable absolute path");
        return false;
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        fail(HttpErrorKind::UnsupportedVersion, offset + sp2 + 1,
             "only HTTP/1.1 and HTTP/1.0 are served");
        return false;
    }
    if (method != "GET" && method != "POST") {
        fail(HttpErrorKind::UnsupportedMethod, offset,
             "only GET and POST are served");
        return false;
    }
    request_.method = method;
    request_.target = target;
    request_.version = version;
    return true;
}

bool
HttpRequestParser::parseHeaderLine(std::string_view line,
                                   std::size_t offset)
{
    if (request_.headers.size() >= kMaxHeaders) {
        fail(HttpErrorKind::TooLarge, offset, "too many headers");
        return false;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
        fail(HttpErrorKind::Syntax, offset,
             "header is not 'name: value'");
        return false;
    }
    std::string name(line.substr(0, colon));
    if (!std::all_of(name.begin(), name.end(), isTokenChar)) {
        fail(HttpErrorKind::Syntax, offset, "malformed header name");
        return false;
    }
    std::transform(name.begin(), name.end(), name.begin(),
                   asciiLower);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() &&
           (value.front() == ' ' || value.front() == '\t'))
        value.remove_prefix(1);
    while (!value.empty() &&
           (value.back() == ' ' || value.back() == '\t'))
        value.remove_suffix(1);
    if (!std::all_of(value.begin(), value.end(), isPrintableAscii)) {
        fail(HttpErrorKind::Syntax, offset + colon + 1,
             "non-printable bytes in header value");
        return false;
    }
    for (const auto &[key, existing] : request_.headers) {
        (void)existing;
        if (key == name) {
            // Duplicates of framing-relevant headers are a classic
            // request-smuggling vector; reject all duplicates.
            fail(HttpErrorKind::Syntax, offset,
                 "duplicate header '" + name + "'");
            return false;
        }
    }
    request_.headers.emplace_back(std::move(name),
                                  std::string(value));
    return true;
}

bool
HttpRequestParser::finishHeaders(std::size_t offset)
{
    if (request_.header("transfer-encoding") != nullptr) {
        fail(HttpErrorKind::UnsupportedEncoding, offset,
             "Transfer-Encoding is not served "
             "(use Content-Length)");
        return false;
    }
    if (const std::string *cl = request_.header("content-length");
        cl != nullptr) {
        if (!parseContentLength(*cl, &contentLength_)) {
            fail(HttpErrorKind::Syntax, offset,
                 "malformed Content-Length '" + *cl + "'");
            return false;
        }
        if (contentLength_ > kMaxBodyBytes) {
            fail(HttpErrorKind::TooLarge, offset,
                 "Content-Length " + *cl + " exceeds cap " +
                     std::to_string(kMaxBodyBytes));
            return false;
        }
        sawContentLength_ = true;
    } else if (request_.method == "POST") {
        fail(HttpErrorKind::UnsupportedEncoding, offset,
             "POST requires Content-Length");
        return false;
    }
    return true;
}

int
HttpRequestParser::errorStatusCode() const
{
    switch (error_.kind) {
    case HttpErrorKind::None:
    case HttpErrorKind::Syntax:
        return 400;
    case HttpErrorKind::TooLarge:
        return 413;
    case HttpErrorKind::UnsupportedMethod:
        return 405;
    case HttpErrorKind::UnsupportedVersion:
        return 505;
    case HttpErrorKind::UnsupportedEncoding:
        // 411 when the length is missing, 501 when an encoding we do
        // not implement was requested.
        return sawContentLength_ ||
                       request_.header("transfer-encoding") != nullptr
                   ? 501
                   : 411;
    }
    return 400;
}

std::string
httpResponse(int status, std::string_view reason,
             std::string_view contentType, std::string_view body)
{
    std::string out;
    out.reserve(body.size() + 128);
    out += "HTTP/1.1 ";
    out += std::to_string(status);
    out += ' ';
    out += reason.empty() ? reasonFor(status) : std::string(reason);
    out += "\r\nContent-Type: ";
    out += contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace sigcomp::server
