/**
 * @file
 * Minimal HTTP/1.1 request framing for sigcompd — the daemon's
 * untrusted-bytes surface, built in the same strict style as the
 * plan JSON parser (analysis/plan_json.h): exact grammar, hard caps
 * on every length and count, a classified error taxonomy with the
 * byte offset where the failure was detected, and no process abort
 * on any input (SC_ASSERT is for internal invariants, not for other
 * people's bytes). Fuzzed by tests/fuzz_http_request.cpp.
 *
 * Deliberately NOT a general HTTP implementation. Supported:
 *
 *   - GET and POST, request-target as an absolute path
 *     ("/v1/run", "/healthz", "/statsz"; printable ASCII, no spaces),
 *   - HTTP/1.1 and HTTP/1.0, CRLF line endings only,
 *   - headers as `token: value` with ASCII values, names
 *     case-normalized to lowercase, duplicate names rejected,
 *   - POST bodies framed by exactly one Content-Length.
 *
 * Everything else — chunked transfer coding, continuation lines,
 * pipelining, upgrade — is rejected with a classified error; the
 * daemon answers one request per connection and closes (the client
 * is sigcomp_client or curl, not a browser).
 *
 * The parser is incremental: feed whatever the socket produced with
 * consume(); it buffers internally and reports NeedMore/Done/Error.
 * Identical bytes yield identical outcomes regardless of chunking
 * (pinned by the fuzz harness).
 */

#ifndef SIGCOMP_SERVER_HTTP_H_
#define SIGCOMP_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sigcomp::server
{

/**
 * Failure taxonomy of HTTP request framing. Every enumerator is
 * exercised by tests/test_server.cpp (enforced by sigcomp_lint's
 * error-taxonomy check).
 */
enum class HttpErrorKind : std::uint8_t
{
    None = 0,
    /** Malformed framing: bad request line, bare LF, control bytes,
     * malformed or duplicate header, bad Content-Length. */
    Syntax,
    /** A cap exceeded: request line, header count/size, body size. */
    TooLarge,
    /** A method other than GET or POST (answer 405). */
    UnsupportedMethod,
    /** An HTTP version other than 1.1/1.0 (answer 505). */
    UnsupportedVersion,
    /** Body framing we do not speak: Transfer-Encoding present, or a
     * POST without Content-Length (answer 501/411). */
    UnsupportedEncoding,
};

/** Canonical lower-case name ("syntax", "too-large", ...). */
const char *httpErrorKindName(HttpErrorKind k);

/** One classified framing failure with its location. */
struct HttpError
{
    HttpErrorKind kind = HttpErrorKind::None;
    /** Byte offset into the request stream where detected. */
    std::size_t offset = 0;
    std::string message;

    /** "\<kind\> at byte \<offset\>: \<message\>" for logs. */
    std::string render() const;
};

// ---- hard caps (all enforced with TooLarge) -------------------------
/** Request line (method + target + version + CRLF). */
constexpr std::size_t kMaxRequestLineBytes = 1024;
/** One header line including CRLF. */
constexpr std::size_t kMaxHeaderLineBytes = 1024;
/** Header count. */
constexpr std::size_t kMaxHeaders = 64;
/** Body size — the plan JSON cap plus framing slack. */
constexpr std::size_t kMaxBodyBytes = (1u << 20) + 4096;

/** A parsed request. Header names are lowercase. */
struct HttpRequest
{
    std::string method;
    std::string target;
    std::string version;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Value of header @p name (lowercase); nullptr when absent. */
    const std::string *header(std::string_view name) const;
};

/** Incremental strict request parser (see file comment). */
class HttpRequestParser
{
  public:
    enum class Status : std::uint8_t
    {
        NeedMore, ///< valid so far; feed more bytes
        Done,     ///< request() is complete
        Error,    ///< error() says why; the connection is poisoned
    };

    /**
     * Feed the next chunk. Once Done or Error is returned the
     * parser stays in that state (extra bytes after a complete
     * request are a Syntax error: no pipelining).
     */
    Status consume(std::string_view bytes);

    /** The parsed request (valid once consume returned Done). */
    const HttpRequest &request() const { return request_; }

    /** The first failure (valid once consume returned Error). */
    const HttpError &error() const { return error_; }

    /**
     * The HTTP status code conventionally answering error(): 400,
     * 413, 405, 505 or 501.
     */
    int errorStatusCode() const;

  private:
    enum class Phase : std::uint8_t
    {
        RequestLine,
        Headers,
        Body,
        Complete,
        Failed,
    };

    Status fail(HttpErrorKind kind, std::size_t offset,
                std::string message);
    Status parseBuffered();
    bool parseRequestLine(std::string_view line, std::size_t offset);
    bool parseHeaderLine(std::string_view line, std::size_t offset);
    /** Header section finished: decide body framing. */
    bool finishHeaders(std::size_t offset);

    Phase phase_ = Phase::RequestLine;
    std::string buf_;
    /** Stream offset of buf_[0] (consumed bytes are dropped). */
    std::size_t base_ = 0;
    std::size_t contentLength_ = 0;
    bool sawContentLength_ = false;
    HttpRequest request_;
    HttpError error_;
};

/**
 * Serialize one response: status line, Content-Type/Content-Length/
 * Connection: close headers, then @p body. @p reason must be a
 * printable ASCII phrase.
 */
std::string httpResponse(int status, std::string_view reason,
                         std::string_view contentType,
                         std::string_view body);

} // namespace sigcomp::server

#endif // SIGCOMP_SERVER_HTTP_H_
