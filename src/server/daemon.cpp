#include "server/daemon.h"

#include <chrono>

#include "analysis/plan_json.h"
#include "common/logging.h"
#include "common/sha256.h"
#include "store/trace_store.h"

namespace sigcomp::server
{

namespace
{

constexpr const char *kStatsSchemaId = "sigcomp-daemon-stats-v1";
constexpr const char *kErrorSchemaId = "sigcomp-daemon-error-v1";

/** How many times a follower retries after its leader died bodiless. */
constexpr int kMaxJoinAttempts = 100;

bool
validTenant(std::string_view tenant)
{
    if (tenant.empty() || tenant.size() > 64)
        return false;
    for (char c : tenant) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** JSON string escape for the error/stats writers (ASCII payloads). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      cache_(config_.cacheMaxEntries, config_.cacheMaxBytes,
             &registry_),
      storeFingerprint_(computeStoreFingerprint(config_)),
      requests_(registry_.counter("daemon.requests")),
      httpErrors_(registry_.counter("daemon.http_errors")),
      planErrors_(registry_.counter("daemon.plan_errors")),
      runs_(registry_.counter("daemon.runs")),
      dedupeJoins_(registry_.counter("daemon.dedupe_joins")),
      disconnectCancels_(
          registry_.counter("daemon.disconnect_cancels")),
      activeConns_(registry_.gauge("daemon.active_connections")),
      tenantsGauge_(registry_.gauge("daemon.tenants"))
{
    watcher_ = std::thread([this] { watchLoop(); });
}

Daemon::~Daemon()
{
    requestStop();
    if (watcher_.joinable())
        watcher_.join();
}

void
Daemon::requestStop()
{
    MutexLock lock(watchMu_);
    stop_ = true;
    watchCv_.notify_all();
}

bool
Daemon::stopRequested() const
{
    MutexLock lock(watchMu_);
    return stop_;
}

std::string
Daemon::computeStoreFingerprint(const DaemonConfig &config)
{
    if (config.storeDir.empty())
        return "none";
    store::StoreOptions options;
    options.readOnly = true;
    options.env = config.env;
    const store::TraceStore store(config.storeDir, options);
    Sha256 h;
    for (const std::string &workload : store.list()) {
        store::SegmentInfo info;
        if (!store.info(workload, info))
            continue; // unreadable segments don't identify content
        h.update(workload);
        h.update(":");
        h.update(std::to_string(info.fileBytes));
        h.update(":");
        h.update(std::to_string(info.instructions));
        h.update(":");
        h.update(std::to_string(info.captureLimit));
        h.update("\n");
    }
    return h.hexDigest();
}

analysis::Session &
Daemon::tenantSession(const std::string &tenant)
{
    MutexLock lock(tenantsMu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        analysis::SessionConfig sc;
        sc.threads = config_.threads;
        sc.storeDir = config_.storeDir;
        sc.spillBudgetBytes = config_.spillBudgetBytes;
        // readOnly without a storeDir is a Session configuration
        // error; a store-less daemon serves RAM-only sessions.
        sc.readOnly = config_.readOnly && !config_.storeDir.empty();
        sc.captureLimit = config_.captureLimit;
        sc.env = config_.env;
        sc.maxConcurrentPlans = config_.maxConcurrentPlans;
        sc.maxQueuedPlans = config_.maxQueuedPlans;
        sc.admissionMemoryBudgetBytes =
            config_.admissionMemoryBudgetBytes;
        it = tenants_
                 .emplace(tenant, std::make_unique<analysis::Session>(
                                      std::move(sc)))
                 .first;
        tenantsGauge_.set(static_cast<std::int64_t>(tenants_.size()));
    }
    return *it->second;
}

// ------------------------------------------------------------------
// Disconnect watcher
// ------------------------------------------------------------------

std::uint64_t
Daemon::watchConn(const std::shared_ptr<net::Conn> &conn,
                  std::shared_ptr<InflightRun> run)
{
    MutexLock lock(watchMu_);
    const std::uint64_t id = nextWatchId_++;
    watches_.push_back(WatchEntry{id, conn, std::move(run)});
    return id;
}

void
Daemon::unwatchConn(std::uint64_t id)
{
    MutexLock lock(watchMu_);
    for (auto it = watches_.begin(); it != watches_.end(); ++it) {
        if (it->id == id) {
            watches_.erase(it);
            return;
        }
    }
}

void
Daemon::watchLoop()
{
    for (;;) {
        std::vector<WatchEntry> snapshot;
        {
            UniqueLock lock(watchMu_);
            if (stop_)
                return;
            watchCv_.wait_for(
                lock.native(),
                std::chrono::milliseconds(config_.watchIntervalMs));
            if (stop_)
                return;
            snapshot.assign(watches_.begin(), watches_.end());
        }
        for (WatchEntry &entry : snapshot) {
            const std::shared_ptr<net::Conn> conn = entry.conn.lock();
            const bool gone =
                conn == nullptr || conn->peerClosed();
            if (!gone)
                continue;
            // This client no longer wants the result. Cancel the
            // run only once NOBODY wants it: a joined follower must
            // not lose its answer to the leader's dead socket.
            bool fireCancel = false;
            {
                MutexLock lock(entry.run->mu);
                if (!entry.run->done) {
                    if (entry.run->interest > 0)
                        --entry.run->interest;
                    fireCancel = entry.run->interest == 0;
                }
            }
            if (fireCancel) {
                entry.run->cancel.cancel();
                disconnectCancels_.inc();
            }
            unwatchConn(entry.id);
        }
    }
}

// ------------------------------------------------------------------
// Serving
// ------------------------------------------------------------------

void
Daemon::serve(net::Listener &listener)
{
    std::vector<std::thread> handlers;
    for (;;) {
        EnvStatus status = EnvStatus::good();
        std::unique_ptr<net::Conn> accepted =
            listener.acceptConn(&status);
        if (accepted == nullptr) {
            if (!status.ok())
                SC_WARN("sigcompd: accept failed: %s",
                        status.message.c_str());
            break;
        }
        if (stopRequested())
            break;
        std::shared_ptr<net::Conn> conn = std::move(accepted);
        handlers.emplace_back(
            [this, conn] { serveConn(conn); });
    }
    for (std::thread &t : handlers)
        t.join();
}

void
Daemon::serveConn(std::shared_ptr<net::Conn> conn)
{
    activeConns_.set(
        activeConnCount_.fetch_add(1, std::memory_order_relaxed) + 1);
    requests_.inc();

    HttpRequestParser parser;
    HttpRequestParser::Status status =
        HttpRequestParser::Status::NeedMore;
    char buf[4096];
    while (status == HttpRequestParser::Status::NeedMore) {
        std::size_t got = 0;
        const EnvStatus rs = conn->read(buf, sizeof(buf), &got);
        if (!rs.ok() || got == 0) {
            // Transport fault or EOF before a complete request:
            // nobody is listening for a reply.
            status = HttpRequestParser::Status::Error;
            httpErrors_.inc();
            conn->closeConn();
            activeConns_.set(activeConnCount_.fetch_sub(
                                 1, std::memory_order_relaxed) -
                             1);
            return;
        }
        status = parser.consume(std::string_view(buf, got));
    }

    if (status == HttpRequestParser::Status::Error) {
        httpErrors_.inc();
        respondError(conn, parser.errorStatusCode(),
                     httpErrorKindName(parser.error().kind),
                     parser.error().render());
    } else {
        handleRequest(conn, parser.request());
    }
    conn->closeConn();
    activeConns_.set(
        activeConnCount_.fetch_sub(1, std::memory_order_relaxed) - 1);
}

void
Daemon::handleRequest(const std::shared_ptr<net::Conn> &conn,
                      const HttpRequest &request)
{
    if (request.target == "/healthz") {
        if (request.method != "GET") {
            respondError(conn, 405, "unsupported-method",
                         "/healthz serves GET only");
            return;
        }
        respond(conn, 200, "text/plain", "ok\n");
        return;
    }
    if (request.target == "/statsz") {
        if (request.method != "GET") {
            respondError(conn, 405, "unsupported-method",
                         "/statsz serves GET only");
            return;
        }
        respond(conn, 200, "application/json", statszJson());
        return;
    }
    if (request.target == "/v1/run") {
        if (request.method != "POST") {
            respondError(conn, 405, "unsupported-method",
                         "/v1/run serves POST only");
            return;
        }
        handleRun(conn, request);
        return;
    }
    respondError(conn, 404, "not-found",
                 "unknown target '" + request.target + "'");
}

void
Daemon::handleRun(const std::shared_ptr<net::Conn> &conn,
                  const HttpRequest &request)
{
    std::string tenant = "default";
    if (const std::string *h = request.header("x-sigcomp-tenant");
        h != nullptr) {
        tenant = *h;
    }
    if (!validTenant(tenant)) {
        respondError(conn, 400, "bad-tenant",
                     "tenant must match [a-z0-9_-]{1,64}");
        return;
    }

    analysis::StudyPlan plan;
    analysis::PlanError planError;
    if (!analysis::parsePlanJson(request.body, &plan, &planError)) {
        planErrors_.inc();
        respondError(conn, 400,
                     analysis::planErrorKindName(planError.kind),
                     planError.render());
        return;
    }
    std::string fingerprint;
    if (!analysis::planFingerprint(plan, &fingerprint, &planError)) {
        planErrors_.inc();
        respondError(conn, 400,
                     analysis::planErrorKindName(planError.kind),
                     planError.render());
        return;
    }
    const std::string cacheKey = fingerprint + ":" + storeFingerprint_;

    std::string body;
    const int status = runPlan(conn, tenant, plan, cacheKey, &body);
    if (status == 0) {
        respondError(conn, 503, "busy",
                     "in-flight dedupe retry limit exceeded");
        return;
    }
    respond(conn, status, "application/json", body);
}

int
Daemon::runPlan(const std::shared_ptr<net::Conn> &conn,
                const std::string &tenant,
                const analysis::StudyPlan &plan,
                const std::string &cacheKey, std::string *body)
{
    if (cache_.lookup(cacheKey, body))
        return 200;

    for (int attempt = 0; attempt < kMaxJoinAttempts; ++attempt) {
        std::shared_ptr<InflightRun> run;
        bool leader = false;
        {
            MutexLock lock(inflightMu_);
            const auto it = inflight_.find(cacheKey);
            if (it != inflight_.end()) {
                run = it->second;
            } else {
                run = std::make_shared<InflightRun>();
                inflight_.emplace(cacheKey, run);
                leader = true;
            }
        }

        if (!leader) {
            dedupeJoins_.inc();
            {
                MutexLock lock(run->mu);
                if (!run->done)
                    ++run->interest;
            }
            const std::uint64_t watchId = watchConn(conn, run);
            int status = 0;
            bool got = false;
            {
                UniqueLock lock(run->mu);
                while (!run->done)
                    run->cv.wait(lock.native());
                if (!run->body.empty()) {
                    *body = run->body;
                    status = run->status;
                    got = true;
                }
            }
            unwatchConn(watchId);
            if (got)
                return status;
            // The leader finished without producing bytes (its
            // client vanished and the run was cancelled before this
            // join registered interest). Try again — the cache or a
            // fresh leadership will answer.
            continue;
        }

        {
            MutexLock lock(run->mu);
            run->interest = 1;
        }
        const std::uint64_t watchId = watchConn(conn, run);
        runs_.inc();

        analysis::StudyPlan execPlan = plan;
        CancelToken token = run->cancel.token();
        if (config_.defaultDeadlineMs != 0) {
            token = token.withDeadlineAfter(std::chrono::milliseconds(
                config_.defaultDeadlineMs));
        }
        execPlan.cancel(token);

        const analysis::SuiteReport report =
            tenantSession(tenant).run(execPlan);
        const std::string json = report.toJson();
        const bool complete =
            !(report.cancelled || report.deadlineExceeded ||
              report.rejected);
        const int status = report.rejected ? 503 : 200;

        if (complete)
            cache_.insert(cacheKey, json);
        {
            // Unpublish BEFORE waking followers: a request arriving
            // after this point starts fresh (and hits the cache).
            MutexLock lock(inflightMu_);
            inflight_.erase(cacheKey);
        }
        {
            MutexLock lock(run->mu);
            run->done = true;
            run->cacheable = complete;
            run->status = status;
            run->body = json;
            run->cv.notify_all();
        }
        unwatchConn(watchId);
        *body = json;
        return status;
    }
    return 0;
}

void
Daemon::respond(const std::shared_ptr<net::Conn> &conn, int status,
                std::string_view contentType, std::string_view body)
{
    const std::string wire =
        httpResponse(status, "", contentType, body);
    // A failed write means the client hung up; the watcher (or the
    // close below) already handles that — nothing to do here.
    (void)conn->writeAll(wire.data(), wire.size());
}

void
Daemon::respondError(const std::shared_ptr<net::Conn> &conn,
                     int status, std::string_view kind,
                     std::string_view message)
{
    std::string body;
    body += "{\n  \"schema\": \"";
    body += kErrorSchemaId;
    body += "\",\n  \"status\": ";
    body += std::to_string(status);
    body += ",\n  \"kind\": \"";
    body += jsonEscape(kind);
    body += "\",\n  \"message\": \"";
    body += jsonEscape(message);
    body += "\"\n}\n";
    respond(conn, status, "application/json", body);
}

std::string
Daemon::statszJson() const
{
    std::string out;
    out += "{\n  \"schema\": \"";
    out += kStatsSchemaId;
    out += "\",\n  \"store_fingerprint\": \"";
    out += jsonEscape(storeFingerprint_);
    out += "\",\n  \"tenants\": ";
    {
        MutexLock lock(tenantsMu_);
        out += std::to_string(tenants_.size());
    }
    out += ",\n  \"metrics\": {";
    const telemetry::Snapshot snap = registry_.snapshot();
    bool first = true;
    for (const telemetry::SnapshotMetric &m : snap.metrics) {
        if (m.kind == telemetry::Kind::Histogram)
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        out += jsonEscape(m.name);
        out += "\": ";
        out += m.kind == telemetry::Kind::Counter
                   ? std::to_string(m.value)
                   : std::to_string(m.gauge);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"active_requests\": ";
    out += std::to_string(
        activeConnCount_.load(std::memory_order_relaxed));
    out += "\n}\n";
    return out;
}

} // namespace sigcomp::server
