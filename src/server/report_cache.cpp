#include "server/report_cache.h"

namespace sigcomp::server
{

ReportCache::ReportCache(std::size_t maxEntries, std::size_t maxBytes,
                         telemetry::Registry *registry)
    : maxEntries_(maxEntries), maxBytes_(maxBytes),
      hits_(registry->counter("daemon.report_cache_hits")),
      misses_(registry->counter("daemon.report_cache_misses")),
      insertions_(registry->counter("daemon.report_cache_insertions")),
      evictions_(registry->counter("daemon.report_cache_evictions")),
      entriesGauge_(registry->gauge("daemon.report_cache_entries")),
      bytesGauge_(registry->gauge("daemon.report_cache_bytes",
                                  telemetry::Unit::Bytes))
{}

bool
ReportCache::lookup(const std::string &key, std::string *body)
{
    MutexLock lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        misses_.inc();
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    *body = it->second->body;
    hits_.inc();
    return true;
}

void
ReportCache::insert(const std::string &key, const std::string &body)
{
    MutexLock lock(mu_);
    if (const auto it = index_.find(key); it != index_.end()) {
        // Deterministic engine: a refresh carries the same bytes
        // modulo wall time. Keep the newer ones and re-account.
        bytes_ -= it->second->body.size();
        bytes_ += body.size();
        it->second->body = body;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front(Entry{key, body});
        index_.emplace(key, lru_.begin());
        bytes_ += body.size();
        insertions_.inc();
    }
    evictToCaps();
    publishGauges();
}

void
ReportCache::evictToCaps()
{
    while (!lru_.empty() &&
           ((maxEntries_ != 0 && lru_.size() > maxEntries_) ||
            (maxBytes_ != 0 && bytes_ > maxBytes_))) {
        const Entry &victim = lru_.back();
        bytes_ -= victim.body.size();
        index_.erase(victim.key);
        lru_.pop_back();
        evictions_.inc();
    }
}

void
ReportCache::publishGauges()
{
    entriesGauge_.set(static_cast<std::int64_t>(lru_.size()));
    bytesGauge_.set(static_cast<std::int64_t>(bytes_));
}

std::size_t
ReportCache::entries() const
{
    MutexLock lock(mu_);
    return lru_.size();
}

std::size_t
ReportCache::bytes() const
{
    MutexLock lock(mu_);
    return bytes_;
}

} // namespace sigcomp::server
