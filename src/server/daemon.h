/**
 * @file
 * sigcompd's core: a multi-tenant experiment-serving daemon over the
 * socket seam (common/net.h).
 *
 * One Daemon owns:
 *
 *  - a per-tenant map of analysis::Session instances, all bound to
 *    ONE shared read-only trace store directory — tenants share the
 *    captured data (it is immutable) while keeping their own RAM
 *    tier, executor, telemetry namespace and admission limits,
 *  - an in-flight run table deduplicating identical work: requests
 *    whose (plan fingerprint, store fingerprint) key matches a run
 *    already executing JOIN it and receive the leader's exact bytes
 *    instead of re-running the engine,
 *  - a bounded LRU ReportCache over the same key, so repeating an
 *    experiment against unchanged data is a lookup, not a replay
 *    (the engine is deterministic: the cached bytes are what a
 *    fresh run would produce, wall time aside),
 *  - a disconnect watcher thread cancelling a run's CancelSource
 *    once every client interested in it has hung up — a dead
 *    client's plan stops at the next block boundary and frees its
 *    admission slot instead of burning the engine for nobody.
 *
 * Protocol (HTTP/1.1, one request per connection, see server/http.h):
 *
 *   POST /v1/run    body: sigcomp-study-plan-v1 JSON
 *                   reply: sigcomp-suite-report-v4 JSON (200; 503
 *                   with the same report shape when admission
 *                   rejected), errors: sigcomp-daemon-error-v1
 *   GET  /healthz   "ok" once serving
 *   GET  /statsz    sigcomp-daemon-stats-v1 JSON: store fingerprint,
 *                   tenant count, and every daemon.* metric
 *
 * The optional X-Sigcomp-Tenant header ([a-z0-9_-], <= 64 bytes,
 * default "default") selects the tenant session.
 *
 * Thread model: serve() accepts and hands each connection to its own
 * handler thread; serveConn() is also directly callable (the tests
 * drive it over memoryConnPair with no sockets involved). All shared
 * state is mutex-guarded and annotated; the TSan concurrency test
 * hammers one Daemon from many client threads.
 */

#ifndef SIGCOMP_SERVER_DAEMON_H_
#define SIGCOMP_SERVER_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/session.h"
#include "common/cancel.h"
#include "common/mutex.h"
#include "common/net.h"
#include "common/telemetry.h"
#include "server/http.h"
#include "server/report_cache.h"

namespace sigcomp::server
{

/** Construction-time configuration of a Daemon. */
struct DaemonConfig
{
    /**
     * Shared trace store directory, opened read-only by every tenant
     * session (prewarm it with sigcomp_store first). Empty = RAM-only
     * sessions (unit tests; capture happens on demand).
     */
    std::string storeDir;
    /**
     * Open the store read-only (the serving default: tenants share
     * segments, nobody mutates them). Tests flip it to exercise the
     * cancelled-writer path. Ignored without a storeDir.
     */
    bool readOnly = true;
    /** Per-tenant session parallelism (0 = shared process pool). */
    unsigned threads = 0;
    /** Per-tenant RAM-tier spill budget (0 = unlimited). */
    std::size_t spillBudgetBytes = 0;
    /** Per-tenant capture cap (must match the prewarmed store's). */
    DWord captureLimit = cpu::TraceBuffer::defaultMaxInstrs;
    /** Per-tenant admission limits (see SessionConfig). */
    unsigned maxConcurrentPlans = 2;
    unsigned maxQueuedPlans = 8;
    std::size_t admissionMemoryBudgetBytes = 0;
    /** Report-cache bounds. */
    std::size_t cacheMaxEntries = 64;
    std::size_t cacheMaxBytes = std::size_t{64} << 20;
    /**
     * Deadline applied to every accepted plan on top of its own
     * deadline_ms — deadlines min-combine, so whichever is tighter
     * fires first. 0 = none.
     */
    std::uint64_t defaultDeadlineMs = 0;
    /** Disconnect-watcher poll interval. */
    unsigned watchIntervalMs = 20;
    /** I/O seam handed to every tenant store (nullptr = real fs). */
    Env *env = nullptr;
};

class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Accept-and-dispatch loop: one handler thread per connection,
     * until requestStop() (or a hard listener fault). Joins every
     * handler before returning, so the caller may destroy the
     * listener afterwards.
     */
    void serve(net::Listener &listener);

    /**
     * Handle exactly one request on @p conn, reply, and close it.
     * The public seam the tests call directly over memory conns.
     * Shared ownership because the disconnect watcher holds a weak
     * reference while a run is in flight.
     */
    void serveConn(std::shared_ptr<net::Conn> conn);

    /** Ask serve() and the watcher to wind down. Thread-safe. */
    void requestStop();
    bool stopRequested() const;

    /** The daemon.* metric namespace (/statsz's source). */
    telemetry::Registry &metrics() { return registry_; }

    /**
     * SHA-256 hex over the store's segment inventory (workload name,
     * file bytes, instruction count, capture limit per segment) —
     * "none" without a store. Half of every cache/dedupe key: a
     * re-captured store invalidates all cached reports.
     */
    const std::string &storeFingerprint() const
    {
        return storeFingerprint_;
    }

    /** The tenant's session, created on first use. */
    analysis::Session &tenantSession(const std::string &tenant)
        SIGCOMP_EXCLUDES(tenantsMu_);

    /** The /statsz body (schema "sigcomp-daemon-stats-v1"). */
    std::string statszJson() const;

  private:
    /**
     * One deduplicated plan execution. The leader runs the engine;
     * followers wait on cv. `interest` counts clients that still
     * want the bytes — the watcher fires `cancel` only when it
     * reaches zero, so one client hanging up never cancels a run
     * another client is waiting for.
     */
    struct InflightRun
    {
        Mutex mu;
        std::condition_variable cv;
        bool done SIGCOMP_GUARDED_BY(mu) = false;
        bool cacheable SIGCOMP_GUARDED_BY(mu) = false;
        int status SIGCOMP_GUARDED_BY(mu) = 0;
        std::string body SIGCOMP_GUARDED_BY(mu);
        unsigned interest SIGCOMP_GUARDED_BY(mu) = 0;
        CancelSource cancel;
    };

    /** A connection the watcher polls while its run is in flight. */
    struct WatchEntry
    {
        std::uint64_t id = 0;
        std::weak_ptr<net::Conn> conn;
        std::shared_ptr<InflightRun> run;
    };

    /** Dispatch one parsed request to its route. */
    void handleRequest(const std::shared_ptr<net::Conn> &conn,
                       const HttpRequest &request);
    void handleRun(const std::shared_ptr<net::Conn> &conn,
                   const HttpRequest &request);
    /** Execute (or join/cache-hit) the plan; returns status+body. */
    int runPlan(const std::shared_ptr<net::Conn> &conn,
                const std::string &tenant,
                const analysis::StudyPlan &plan,
                const std::string &cacheKey, std::string *body);
    void respond(const std::shared_ptr<net::Conn> &conn, int status,
                 std::string_view contentType, std::string_view body);
    /** sigcomp-daemon-error-v1 reply. */
    void respondError(const std::shared_ptr<net::Conn> &conn,
                      int status, std::string_view kind,
                      std::string_view message);

    std::uint64_t watchConn(const std::shared_ptr<net::Conn> &conn,
                            std::shared_ptr<InflightRun> run)
        SIGCOMP_EXCLUDES(watchMu_);
    void unwatchConn(std::uint64_t id) SIGCOMP_EXCLUDES(watchMu_);
    /** Watcher thread body: poll peerClosed, cancel orphaned runs. */
    void watchLoop();

    static std::string computeStoreFingerprint(
        const DaemonConfig &config);

    const DaemonConfig config_;
    telemetry::Registry registry_;
    ReportCache cache_;
    std::string storeFingerprint_;

    mutable Mutex tenantsMu_;
    std::map<std::string, std::unique_ptr<analysis::Session>>
        tenants_ SIGCOMP_GUARDED_BY(tenantsMu_);

    mutable Mutex inflightMu_;
    std::map<std::string, std::shared_ptr<InflightRun>>
        inflight_ SIGCOMP_GUARDED_BY(inflightMu_);

    mutable Mutex watchMu_;
    std::condition_variable watchCv_;
    std::list<WatchEntry> watches_ SIGCOMP_GUARDED_BY(watchMu_);
    std::uint64_t nextWatchId_ SIGCOMP_GUARDED_BY(watchMu_) = 1;
    bool stop_ SIGCOMP_GUARDED_BY(watchMu_) = false;
    std::thread watcher_;

    /** Live serveConn count, mirrored into the gauge. */
    std::atomic<int> activeConnCount_{0};

    telemetry::Counter &requests_;
    telemetry::Counter &httpErrors_;
    telemetry::Counter &planErrors_;
    telemetry::Counter &runs_;
    telemetry::Counter &dedupeJoins_;
    telemetry::Counter &disconnectCancels_;
    telemetry::Gauge &activeConns_;
    telemetry::Gauge &tenantsGauge_;
};

} // namespace sigcomp::server

#endif // SIGCOMP_SERVER_DAEMON_H_
