#include "common/crc32.h"

#include "common/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SIGCOMP_X86_CRC 1
#endif

namespace sigcomp::detail
{

namespace
{

#if SIGCOMP_X86_CRC

/**
 * PCLMULQDQ carry-less folding for the reflected CRC-32 polynomial
 * (the structure and fold constants are the standard ones from
 * Intel's "Fast CRC Computation Using PCLMULQDQ" applied to
 * 0xEDB88320; same scheme as zlib's vector path). Requires
 * @p len >= 64; sub-16-byte tails fold back through the scalar core.
 * Verified bit-identical to the slicing-by-8 core over random
 * buffers of every alignment/length class in test_simd.cpp.
 */
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
crc32Clmul(std::uint32_t crc, const unsigned char *buf, std::size_t len)
{
    // x^(4*128+64) mod P, x^(4*128) mod P
    const __m128i k1k2 = _mm_set_epi64x(0x00000001c6e41596ll,
                                        0x0000000154442bd4ll);
    // x^(128+64) mod P, x^128 mod P
    const __m128i k3k4 = _mm_set_epi64x(0x00000000ccaa009ell,
                                        0x00000001751997d0ll);
    // x^64 mod P
    const __m128i k5 = _mm_set_epi64x(0, 0x0000000163cd6124ll);
    // P' (reciprocal polynomial), Barrett constant mu
    const __m128i poly = _mm_set_epi64x(0x00000001f7011641ll,
                                        0x00000001db710641ll);
    const __m128i mask32 = _mm_setr_epi32(-1, 0, 0, 0);

    __m128i x1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(buf + 0x00));
    __m128i x2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(buf + 0x10));
    __m128i x3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(buf + 0x20));
    __m128i x4 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(buf + 0x30));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
    buf += 64;
    len -= 64;

    // Fold 64 bytes at a time.
    while (len >= 64) {
        __m128i x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
        __m128i x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
        __m128i x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
        __m128i x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
        x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
        x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
        x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
        x1 = _mm_xor_si128(
            _mm_xor_si128(x1, x5),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(buf + 0x00)));
        x2 = _mm_xor_si128(
            _mm_xor_si128(x2, x6),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(buf + 0x10)));
        x3 = _mm_xor_si128(
            _mm_xor_si128(x3, x7),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(buf + 0x20)));
        x4 = _mm_xor_si128(
            _mm_xor_si128(x4, x8),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(buf + 0x30)));
        buf += 64;
        len -= 64;
    }

    // Fold the four lanes into one.
    __m128i x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
    x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

    // Remaining whole 16-byte chunks.
    while (len >= 16) {
        x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(
            _mm_xor_si128(x1, x5),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(buf)));
        buf += 16;
        len -= 16;
    }

    // Reduce 128 -> 64 bits.
    __m128i x0 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, x0);

    // Reduce 64 -> 32 bits.
    x0 = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
    x1 = _mm_xor_si128(x1, x0);

    // Barrett reduction.
    x0 = _mm_and_si128(x1, mask32);
    x0 = _mm_clmulepi64_si128(x0, poly, 0x10);
    x0 = _mm_and_si128(x0, mask32);
    x0 = _mm_clmulepi64_si128(x0, poly, 0x00);
    x1 = _mm_xor_si128(x1, x0);

    // Remaining < 16 bytes via the scalar core.
    const std::uint32_t folded = static_cast<std::uint32_t>(
        _mm_extract_epi32(x1, 1));
    return crc32UpdateScalar(folded, buf, len);
}

bool
havePclmul()
{
    static const bool have = __builtin_cpu_supports("pclmul") &&
                             __builtin_cpu_supports("sse4.1");
    return have;
}

#endif // SIGCOMP_X86_CRC

} // namespace

std::uint32_t
crc32UpdateLarge(std::uint32_t crc, const unsigned char *p,
                 std::size_t len)
{
#if SIGCOMP_X86_CRC
    // The scalar pin (SIGCOMP_FORCE_SCALAR / setSimdLevel) covers the
    // checksum too, so the fallback path stays continuously tested.
    if (len >= 64 && havePclmul() &&
        simd::activeSimdLevel() != simd::SimdLevel::Scalar) {
        return crc32Clmul(crc, p, len);
    }
#endif
    return crc32UpdateScalar(crc, p, len);
}

} // namespace sigcomp::detail
