/**
 * @file
 * Cooperative cancellation and deadlines for the request lifecycle.
 *
 * A CancelSource owns the cancellation flag; CancelTokens are cheap
 * copyable views of it, optionally carrying a deadline. Everything
 * long-running on the Session::run path — functional capture, the
 * fused replay loop, executor dispatch, store save retries — polls a
 * token at its natural work granularity (a replay block, a capture
 * chunk, one executor task) and stops at the next boundary when the
 * token fires. Cancellation is advisory, never preemptive: work in
 * flight completes its current block, and every stop point is chosen
 * so persistent state (the trace store) is either untouched or
 * complete (see store/trace_store.h's durable-save discipline).
 *
 * Deadlines are plain values, not shared state: deriving a token
 * with withDeadlineAfter() min-combines deadlines, and expiry is
 * computed against the steady clock on each poll. An explicit
 * cancel() always wins over a deadline when both apply.
 */

#ifndef SIGCOMP_COMMON_CANCEL_H_
#define SIGCOMP_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>

namespace sigcomp
{

/** Why a run stopped early (None = it was never asked to). */
enum class CancelReason : std::uint8_t
{
    None = 0,
    Cancelled,        ///< CancelSource::cancel() was called
    DeadlineExceeded, ///< the token's deadline passed
};

class CancelSource;

/**
 * Read-side view of a cancellation request. Default-constructed
 * tokens can never fire (canStop() == false), so APIs take a token
 * by value with no null checks; passing `const CancelToken *` with
 * nullptr meaning "uncancellable" is the convention on hot paths.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** True when this token could ever request a stop. */
    bool
    canStop() const
    {
        return state_ != nullptr || deadlineNanos_ != kNoDeadline;
    }

    /** Poll: has a cancel or deadline expiry been requested? */
    bool
    stopRequested() const
    {
        if (state_ != nullptr &&
            state_->load(std::memory_order_acquire)) {
            return true;
        }
        return deadlineNanos_ != kNoDeadline &&
               nowNanos() >= deadlineNanos_;
    }

    /** Why stopRequested() is true (explicit cancel wins). */
    CancelReason
    reason() const
    {
        if (state_ != nullptr &&
            state_->load(std::memory_order_acquire)) {
            return CancelReason::Cancelled;
        }
        if (deadlineNanos_ != kNoDeadline && nowNanos() >= deadlineNanos_)
            return CancelReason::DeadlineExceeded;
        return CancelReason::None;
    }

    /**
     * A copy of this token that additionally expires @p delta from
     * now (min-combined with any existing deadline).
     */
    CancelToken
    withDeadlineAfter(std::chrono::nanoseconds delta) const
    {
        CancelToken t = *this;
        const std::int64_t at = nowNanos() + delta.count();
        if (at < t.deadlineNanos_)
            t.deadlineNanos_ = at;
        return t;
    }

    /** This token's absolute deadline in steady-clock nanos. */
    std::int64_t deadlineNanos() const { return deadlineNanos_; }

    /** No deadline sentinel. */
    static constexpr std::int64_t kNoDeadline =
        std::numeric_limits<std::int64_t>::max();

    /** Steady-clock now in nanoseconds (the deadline timebase). */
    static std::int64_t
    nowNanos()
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

  private:
    friend class CancelSource;

    explicit CancelToken(std::shared_ptr<const std::atomic<bool>> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<const std::atomic<bool>> state_;
    std::int64_t deadlineNanos_ = kNoDeadline;
};

/** Owner of one cancellation flag; hands out tokens. */
class CancelSource
{
  public:
    CancelSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

    CancelToken token() const { return CancelToken(state_); }

    /** Request a stop. Idempotent, thread-safe, never blocks. */
    void cancel() { state_->store(true, std::memory_order_release); }

    bool
    cancelled() const
    {
        return state_->load(std::memory_order_acquire);
    }

  private:
    std::shared_ptr<std::atomic<bool>> state_;
};

/**
 * Thrown by capture/replay when a cancel arrives mid-operation: the
 * aborted work's partial state must not look like a result, so the
 * stack unwinds instead of returning one. Session::run catches it
 * and marks the workload incomplete in the partial report.
 */
class CancelledError : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "operation cancelled";
    }
};

/** Convention helper for `const CancelToken *` plumbing. */
inline bool
cancelRequested(const CancelToken *cancel)
{
    return cancel != nullptr && cancel->stopRequested();
}

} // namespace sigcomp

#endif // SIGCOMP_COMMON_CANCEL_H_
