/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
 * guarding the trace-store segment files. Slicing-by-8 table
 * implementation, header-only; the tables build once per process.
 *
 * Speed matters here: warm-store trace loads checksum every column
 * payload (megabytes per workload) on a path that has to beat
 * functional re-simulation, and byte-at-a-time CRC was a measurable
 * fraction of that budget.
 */

#ifndef SIGCOMP_COMMON_CRC32_H_
#define SIGCOMP_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace sigcomp
{

namespace detail
{

/** tables[j][b]: CRC of byte b followed by j zero bytes. */
inline const std::array<std::array<std::uint32_t, 256>, 8> &
crc32Tables()
{
    static const std::array<std::array<std::uint32_t, 256>, 8> tables =
        [] {
            std::array<std::array<std::uint32_t, 256>, 8> t{};
            for (std::uint32_t i = 0; i < 256; ++i) {
                std::uint32_t c = i;
                for (int k = 0; k < 8; ++k)
                    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
                t[0][i] = c;
            }
            for (std::uint32_t i = 0; i < 256; ++i)
                for (unsigned j = 1; j < 8; ++j)
                    t[j][i] =
                        (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
            return t;
        }();
    return tables;
}

/**
 * Advance the raw (pre/post-complement) CRC state over @p len bytes:
 * the slicing-by-8 core, shared by the public crc32() and by the
 * vector path's head/tail handling.
 */
inline std::uint32_t
crc32UpdateScalar(std::uint32_t crc, const unsigned char *p,
                  std::size_t len)
{
    const auto &t = crc32Tables();
    // Eight bytes per step: the CRC of the first four folds through
    // tables 4-7 while tables 0-3 absorb the next four.
    while (len >= 8) {
        const std::uint32_t lo =
            crc ^ (static_cast<std::uint32_t>(p[0]) |
                   (static_cast<std::uint32_t>(p[1]) << 8) |
                   (static_cast<std::uint32_t>(p[2]) << 16) |
                   (static_cast<std::uint32_t>(p[3]) << 24));
        crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
              t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
              t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
        p += 8;
        len -= 8;
    }
    while (len-- > 0)
        crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    return crc;
}

/**
 * Raw-state update for large buffers, PCLMULQDQ carry-less folding
 * when the CPU has it (runtime-probed; SIGCOMP_FORCE_SCALAR pins it
 * off) and the scalar core otherwise. Defined in crc32.cpp; always
 * bit-identical to crc32UpdateScalar (pinned in test_simd).
 */
std::uint32_t crc32UpdateLarge(std::uint32_t crc,
                               const unsigned char *p, std::size_t len);

} // namespace detail

/**
 * Extend a running CRC-32 with @p len bytes. Start (and finish) with
 * @p crc = 0; chain calls to checksum discontiguous regions.
 */
inline std::uint32_t
crc32(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    crc = len >= 128 ? detail::crc32UpdateLarge(crc, p, len)
                     : detail::crc32UpdateScalar(crc, p, len);
    return ~crc;
}

} // namespace sigcomp

#endif // SIGCOMP_COMMON_CRC32_H_
