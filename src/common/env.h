/**
 * @file
 * The filesystem seam: every byte the trace store reads from or
 * writes to disk goes through a sigcomp::Env (the LevelDB Env idiom).
 *
 * Before this seam the store called open/mmap/fopen/rename directly,
 * so its fail-soft claims could only be tested with hand-corrupted
 * files — never with faults injected at the syscall boundary, which
 * is where a long-running multi-tenant service actually meets
 * ENOSPC, EIO, torn writes and crashes mid-save. With the seam in
 * place, production code runs over the PosixEnv singleton (mmap
 * reads, fsync-guarded writes) and the robustness tests run the SAME
 * store/session code over a deterministic FaultInjectingEnv
 * (common/fault_env.h) that injects every fault class on schedule.
 *
 * Every operation reports an EnvStatus whose fault class drives the
 * caller's recovery policy (see README "Failure model"):
 *
 *   Transient  (EINTR/EAGAIN/EIO/EBUSY)  → bounded retry + backoff
 *   NoSpace    (ENOSPC/EDQUOT/EFBIG)     → permanent: degrade writes
 *   ReadOnly   (EROFS/EACCES/EPERM)      → permanent: degrade writes
 *   NotFound   (ENOENT/ENOTDIR)          → ordinary miss, not a fault
 *   Crashed    (fault injection only)    → simulated process death
 *   Other                                → permanent
 *
 * Thread-safety: PosixEnv is stateless and safe from any number of
 * threads; Env implementations must tolerate concurrent calls (the
 * store is documented concurrency-safe and runs under TSan).
 */

#ifndef SIGCOMP_COMMON_ENV_H_
#define SIGCOMP_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sigcomp
{

/** Fault taxonomy of a failed Env operation (see file comment). */
enum class EnvFault : std::uint8_t
{
    None = 0,
    NotFound,  ///< ENOENT-class: a miss, not damage
    Transient, ///< EINTR/EAGAIN/EIO-class: a retry may succeed
    NoSpace,   ///< ENOSPC-class: permanent until an operator acts
    ReadOnly,  ///< EROFS/EACCES/EPERM-class: permanent
    Crashed,   ///< injected: the simulated process died mid-run
    Other,     ///< anything else: treated as permanent
};

/** Stable lowercase name of @p fault (logs, scripts, JSON). */
const char *envFaultName(EnvFault fault);

/** Outcome of one Env operation. */
struct EnvStatus
{
    EnvFault fault = EnvFault::None;
    std::string message;

    bool ok() const { return fault == EnvFault::None; }

    /** True when a bounded retry of the whole operation may succeed. */
    bool transient() const { return fault == EnvFault::Transient; }

    static EnvStatus good() { return EnvStatus{}; }

    static EnvStatus
    error(EnvFault f, std::string msg)
    {
        return EnvStatus{f, std::move(msg)};
    }
};

/**
 * Abstract filesystem interface. All paths are plain strings;
 * directory components are joined with '/'.
 */
class Env
{
  public:
    virtual ~Env() = default;

    /** The process-wide real-filesystem Env (stateless singleton). */
    static Env &posix();

    /**
     * Read-only whole-file view. PosixEnv memory-maps the file (heap
     * read fallback on exotic filesystems), so decoders stream out
     * of the page cache without a read-then-decode copy.
     */
    class FileView
    {
      public:
        virtual ~FileView() = default;
        virtual const std::uint8_t *data() const = 0;
        virtual std::size_t size() const = 0;
    };

    /** Sequential writer for one fresh file (truncates on create). */
    class WritableFile
    {
      public:
        virtual ~WritableFile() = default;
        virtual EnvStatus append(const void *data, std::size_t n) = 0;
        /** Flush file contents to stable storage (fsync). */
        virtual EnvStatus sync() = 0;
        /** Close; further calls are invalid. Destructor closes too. */
        virtual EnvStatus close() = 0;
    };

    /** nullptr + @p status on any failure (including not-found). */
    virtual std::unique_ptr<FileView>
    loadFile(const std::string &path, EnvStatus *status = nullptr) = 0;

    /** nullptr + @p status on any failure. */
    virtual std::unique_ptr<WritableFile>
    createFile(const std::string &path, EnvStatus *status = nullptr) = 0;

    /** Atomic replace (POSIX rename semantics). */
    virtual EnvStatus renameFile(const std::string &from,
                                 const std::string &to) = 0;

    /** Missing files are not an error (NotFound is still reported). */
    virtual EnvStatus removeFile(const std::string &path) = 0;

    virtual bool fileExists(const std::string &path) = 0;

    /** mkdir -p. */
    virtual EnvStatus createDirs(const std::string &dir) = 0;

    /** Filenames (not paths) in @p dir, sorted; empty on failure. */
    virtual std::vector<std::string>
    listDir(const std::string &dir, EnvStatus *status = nullptr) = 0;

    /**
     * fsync the directory itself, making completed renames/creates in
     * it durable across power loss.
     */
    virtual EnvStatus syncDir(const std::string &dir) = 0;
};

} // namespace sigcomp

#endif // SIGCOMP_COMMON_ENV_H_
