/**
 * @file
 * Clang Thread Safety Analysis macros (no-ops on other compilers).
 *
 * The engine is deeply concurrent — ParallelExecutor fans suite
 * replays across cores, several Sessions coexist over one shared
 * store, TraceCache spills under budget while other threads read —
 * so every lock contract in the tree is machine-checked, not
 * comment-documented: each guarded member names its mutex
 * (SIGCOMP_GUARDED_BY) and each locking function declares what it
 * acquires or expects (SIGCOMP_REQUIRES / SIGCOMP_ACQUIRE /
 * SIGCOMP_EXCLUDES). Clang builds compile with
 * `-Wthread-safety -Werror=thread-safety` (see CMakeLists.txt), so a
 * new member that touches shared state without naming its mutex, or
 * a call path that skips a required lock, fails the build. GCC
 * compiles the annotations away.
 *
 * Conventions for new code (see README "Correctness tooling"):
 *  - protect shared state with sigcomp::Mutex (common/mutex.h), not
 *    raw std::mutex: the wrapper carries the capability attributes
 *    the analysis needs (libstdc++'s std::mutex has none);
 *  - every mutex member must have at least one SIGCOMP_GUARDED_BY
 *    user (enforced by tools/sigcomp_lint);
 *  - lock with sigcomp::MutexLock / sigcomp::UniqueLock so scope and
 *    capability agree; private helpers called under the lock take
 *    SIGCOMP_REQUIRES(mu_) instead of re-locking;
 *  - condition-variable waits go through UniqueLock::native() inside
 *    an explicit while loop — the analysis treats the capability as
 *    held across the wait, which matches the post-wait state.
 *
 * Macro set and semantics follow the Clang TSA documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
 */

#ifndef SIGCOMP_COMMON_THREAD_ANNOTATIONS_H_
#define SIGCOMP_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SIGCOMP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SIGCOMP_THREAD_ANNOTATION(x) // no-op: GCC has no TSA
#endif

/** Class is a lockable capability (mutex-like). */
#define SIGCOMP_CAPABILITY(x) SIGCOMP_THREAD_ANNOTATION(capability(x))

/** RAII class acquiring in its constructor, releasing in its dtor. */
#define SIGCOMP_SCOPED_CAPABILITY SIGCOMP_THREAD_ANNOTATION(scoped_lockable)

/** Member readable/writable only with @p x held. */
#define SIGCOMP_GUARDED_BY(x) SIGCOMP_THREAD_ANNOTATION(guarded_by(x))

/** Pointee readable/writable only with @p x held. */
#define SIGCOMP_PT_GUARDED_BY(x) SIGCOMP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the listed capabilities (exclusive). */
#define SIGCOMP_REQUIRES(...) \
    SIGCOMP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities (shared). */
#define SIGCOMP_REQUIRES_SHARED(...) \
    SIGCOMP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define SIGCOMP_ACQUIRE(...) \
    SIGCOMP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define SIGCOMP_RELEASE(...) \
    SIGCOMP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires iff it returns @p success (first argument). */
#define SIGCOMP_TRY_ACQUIRE(...) \
    SIGCOMP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define SIGCOMP_EXCLUDES(...) \
    SIGCOMP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define SIGCOMP_RETURN_CAPABILITY(x) \
    SIGCOMP_THREAD_ANNOTATION(lock_returned(x))

/** Declared lock acquisition order (deadlock-freedom documentation). */
#define SIGCOMP_ACQUIRED_BEFORE(...) \
    SIGCOMP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SIGCOMP_ACQUIRED_AFTER(...) \
    SIGCOMP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Escape hatch — use only with a comment explaining why. */
#define SIGCOMP_NO_THREAD_SAFETY_ANALYSIS \
    SIGCOMP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // SIGCOMP_COMMON_THREAD_ANNOTATIONS_H_
