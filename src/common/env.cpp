#include "common/env.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace sigcomp
{

const char *
envFaultName(EnvFault fault)
{
    switch (fault) {
    case EnvFault::None: return "none";
    case EnvFault::NotFound: return "not-found";
    case EnvFault::Transient: return "transient";
    case EnvFault::NoSpace: return "no-space";
    case EnvFault::ReadOnly: return "read-only";
    case EnvFault::Crashed: return "crashed";
    case EnvFault::Other: return "other";
    }
    return "?";
}

namespace
{

/** Map an errno to the recovery-policy fault class. */
EnvFault
classifyErrno(int err)
{
    switch (err) {
    case ENOENT:
    case ENOTDIR:
        return EnvFault::NotFound;
    case EINTR:
    case EAGAIN:
    case EIO:
    case EBUSY:
    case ETIMEDOUT:
        return EnvFault::Transient;
    case ENOSPC:
    case EDQUOT:
    case EFBIG:
        return EnvFault::NoSpace;
    case EROFS:
    case EACCES:
    case EPERM:
        return EnvFault::ReadOnly;
    default:
        return EnvFault::Other;
    }
}

EnvStatus
errnoStatus(const char *op, const std::string &path, int err)
{
    return EnvStatus::error(classifyErrno(err),
                            std::string(op) + " '" + path +
                                "': " + std::strerror(err));
}

void
setStatus(EnvStatus *out, EnvStatus st)
{
    if (out != nullptr)
        *out = std::move(st);
}

/**
 * mmap-backed read view with a heap-read fallback (filesystems that
 * refuse MAP_PRIVATE); either way the view is plain (data, size).
 */
class PosixFileView : public Env::FileView
{
  public:
    PosixFileView(const std::string &path, EnvStatus &st)
    {
        const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0) {
            st = errnoStatus("open", path, errno);
            return;
        }
        struct stat file_stat;
        if (::fstat(fd, &file_stat) != 0 || file_stat.st_size < 0) {
            st = errnoStatus("fstat", path, errno);
            ::close(fd);
            return;
        }
        size_ = static_cast<std::size_t>(file_stat.st_size);
        if (size_ == 0) {
            ::close(fd);
            ok_ = true; // empty file: valid, zero-length view
            return;
        }
        void *m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (m != MAP_FAILED) {
            map_ = m;
            ok_ = true;
            ::close(fd);
            return;
        }
        heap_.resize(size_);
        std::size_t got = 0;
        while (got < size_) {
            const ssize_t r =
                ::read(fd, heap_.data() + got, size_ - got);
            if (r < 0 && errno == EINTR)
                continue;
            if (r <= 0)
                break;
            got += static_cast<std::size_t>(r);
        }
        ::close(fd);
        ok_ = got == size_;
        if (!ok_)
            st = errnoStatus("read", path, errno ? errno : EIO);
    }

    ~PosixFileView() override
    {
        if (map_ != nullptr)
            ::munmap(map_, size_);
    }

    bool ok() const { return ok_; }
    std::size_t size() const override { return size_; }

    const std::uint8_t *
    data() const override
    {
        return map_ != nullptr
                   ? static_cast<const std::uint8_t *>(map_)
                   : heap_.data();
    }

  private:
    void *map_ = nullptr;
    std::size_t size_ = 0;
    std::vector<std::uint8_t> heap_;
    bool ok_ = false;
};

class PosixWritableFile : public Env::WritableFile
{
  public:
    PosixWritableFile(int fd, std::string path)
        : fd_(fd), path_(std::move(path))
    {}

    ~PosixWritableFile() override
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    EnvStatus
    append(const void *data, std::size_t n) override
    {
        const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
        while (n > 0) {
            const ssize_t w = ::write(fd_, p, n);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return errnoStatus("write", path_, errno);
            }
            p += static_cast<std::size_t>(w);
            n -= static_cast<std::size_t>(w);
        }
        return EnvStatus::good();
    }

    EnvStatus
    sync() override
    {
        if (::fsync(fd_) != 0)
            return errnoStatus("fsync", path_, errno);
        return EnvStatus::good();
    }

    EnvStatus
    close() override
    {
        if (fd_ < 0)
            return EnvStatus::good();
        const int fd = fd_;
        fd_ = -1;
        if (::close(fd) != 0)
            return errnoStatus("close", path_, errno);
        return EnvStatus::good();
    }

  private:
    int fd_;
    std::string path_;
};

class PosixEnv : public Env
{
  public:
    std::unique_ptr<FileView>
    loadFile(const std::string &path, EnvStatus *status) override
    {
        EnvStatus st;
        auto view = std::make_unique<PosixFileView>(path, st);
        if (!view->ok()) {
            setStatus(status, std::move(st));
            return nullptr;
        }
        setStatus(status, EnvStatus::good());
        return view;
    }

    std::unique_ptr<WritableFile>
    createFile(const std::string &path, EnvStatus *status) override
    {
        const int fd = ::open(path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                              0644);
        if (fd < 0) {
            setStatus(status, errnoStatus("create", path, errno));
            return nullptr;
        }
        setStatus(status, EnvStatus::good());
        return std::make_unique<PosixWritableFile>(fd, path);
    }

    EnvStatus
    renameFile(const std::string &from, const std::string &to) override
    {
        if (::rename(from.c_str(), to.c_str()) != 0)
            return errnoStatus("rename", from, errno);
        return EnvStatus::good();
    }

    EnvStatus
    removeFile(const std::string &path) override
    {
        if (::unlink(path.c_str()) != 0)
            return errnoStatus("unlink", path, errno);
        return EnvStatus::good();
    }

    bool
    fileExists(const std::string &path) override
    {
        struct stat file_stat;
        return ::stat(path.c_str(), &file_stat) == 0;
    }

    EnvStatus
    createDirs(const std::string &dir) override
    {
        // mkdir -p: create each '/'-separated prefix in turn.
        std::string prefix;
        prefix.reserve(dir.size());
        std::size_t i = 0;
        while (i < dir.size()) {
            std::size_t j = dir.find('/', i);
            if (j == std::string::npos)
                j = dir.size();
            prefix.assign(dir, 0, j);
            i = j + 1;
            if (prefix.empty())
                continue; // leading '/' of an absolute path
            if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
                return errnoStatus("mkdir", prefix, errno);
        }
        struct stat dir_stat;
        if (::stat(dir.c_str(), &dir_stat) != 0 ||
            !S_ISDIR(dir_stat.st_mode)) {
            return EnvStatus::error(EnvFault::Other,
                                    "mkdir '" + dir +
                                        "': not a directory");
        }
        return EnvStatus::good();
    }

    std::vector<std::string>
    listDir(const std::string &dir, EnvStatus *status) override
    {
        std::vector<std::string> names;
        DIR *d = ::opendir(dir.c_str());
        if (d == nullptr) {
            setStatus(status, errnoStatus("opendir", dir, errno));
            return names;
        }
        while (const struct dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                names.push_back(name);
        }
        ::closedir(d);
        std::sort(names.begin(), names.end());
        setStatus(status, EnvStatus::good());
        return names;
    }

    EnvStatus
    syncDir(const std::string &dir) override
    {
        const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0)
            return errnoStatus("open dir", dir, errno);
        const bool ok = ::fsync(fd) == 0;
        const int err = errno;
        ::close(fd);
        if (!ok)
            return errnoStatus("fsync dir", dir, err);
        return EnvStatus::good();
    }
};

} // namespace

Env &
Env::posix()
{
    static PosixEnv env;
    return env;
}

} // namespace sigcomp
