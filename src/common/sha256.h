/**
 * @file
 * SHA-256 (FIPS 180-4), dependency-free: the digest behind the
 * daemon's content-addressed report cache and plan/store
 * fingerprints.
 *
 * CRC-32 (common/crc32.h) guards bytes against *accidental* damage;
 * a content-addressed cache needs a digest whose collisions are not
 * a practical concern, because two distinct plans hashing to one key
 * would serve one plan's cached report for the other. Throughput is
 * irrelevant here — the inputs are kilobyte-scale canonical JSON
 * documents hashed once per request — so this is the plain portable
 * compression function, verified against the FIPS test vectors in
 * tests/test_server.cpp.
 */

#ifndef SIGCOMP_COMMON_SHA256_H_
#define SIGCOMP_COMMON_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sigcomp
{

/** Incremental SHA-256 hasher (update any number of times). */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p n bytes. */
    void update(const void *data, std::size_t n);

    void
    update(std::string_view s)
    {
        update(s.data(), s.size());
    }

    /**
     * Finalize and return the 32-byte digest. The hasher is spent
     * afterwards; construct a fresh one for the next message.
     */
    std::array<std::uint8_t, 32> digest();

    /** digest() as 64 lowercase hex characters. */
    std::string hexDigest();

    /** One-shot convenience: hex digest of @p s. */
    static std::string hex(std::string_view s);

  private:
    void compress(const std::uint8_t block[64]);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t totalBytes_ = 0;
    std::array<std::uint8_t, 64> buf_{};
    std::size_t bufLen_ = 0;
};

} // namespace sigcomp

#endif // SIGCOMP_COMMON_SHA256_H_
