/**
 * @file
 * Bit- and byte-level helpers shared by the significance machinery.
 */

#ifndef SIGCOMP_COMMON_BITUTIL_H_
#define SIGCOMP_COMMON_BITUTIL_H_

#include <bit>

#include "common/types.h"

namespace sigcomp
{

/** Extract byte @p i (0 = least significant) of @p w. */
constexpr Byte
wordByte(Word w, unsigned i)
{
    return static_cast<Byte>(w >> (8 * i));
}

/** Replace byte @p i of @p w with @p b. */
constexpr Word
setWordByte(Word w, unsigned i, Byte b)
{
    const Word mask = Word{0xff} << (8 * i);
    return (w & ~mask) | (Word{b} << (8 * i));
}

/** Extract halfword @p i (0 = least significant) of @p w. */
constexpr Half
wordHalf(Word w, unsigned i)
{
    return static_cast<Half>(w >> (16 * i));
}

/** The most significant bit of a byte. */
constexpr bool
byteMsb(Byte b)
{
    return (b & 0x80) != 0;
}

/** Sign-fill byte implied by a preceding byte's MSB. */
constexpr Byte
signFill(Byte preceding)
{
    return byteMsb(preceding) ? Byte{0xff} : Byte{0x00};
}

/** Sign-extend the low @p bits bits of @p v to 32 bits. */
constexpr Word
signExtend(Word v, unsigned bits)
{
    const unsigned shift = 32 - bits;
    return static_cast<Word>(static_cast<SWord>(v << shift) >> shift);
}

/** Extract the bit field [lo, lo+len) of @p v. */
constexpr Word
bitField(Word v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 32) ? ~Word{0} : ((Word{1} << len) - 1));
}

/** Insert @p field into bits [lo, lo+len) of @p v. */
constexpr Word
setBitField(Word v, unsigned lo, unsigned len, Word field)
{
    const Word mask = ((len >= 32) ? ~Word{0} : ((Word{1} << len) - 1)) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/** Population count of differing bits between two words. */
constexpr unsigned
hammingDistance(Word a, Word b)
{
    return static_cast<unsigned>(std::popcount(a ^ b));
}

/**
 * Number of low-order bytes that must be kept so that sign-extending
 * them reproduces @p v exactly (the 2-bit "Ext2" significance count).
 *
 * Branchless: the set of widths that reproduce @p v is an up-set
 * (if k bytes suffice, so do k+1), so the count is one plus the
 * number of widths that fail.
 *
 * @return a value in [1, 4].
 */
constexpr unsigned
significantBytes(Word v)
{
    return 1u + unsigned{signExtend(v, 8) != v} +
           unsigned{signExtend(v, 16) != v} +
           unsigned{signExtend(v, 24) != v};
}

/** Halfword analogue of significantBytes(): 1 or 2 halfwords. */
constexpr unsigned
significantHalves(Word v)
{
    return 1u + unsigned{signExtend(v, 16) != v};
}

/** Round-up integer division. */
constexpr unsigned
divCeil(unsigned a, unsigned b)
{
    return (a + b - 1) / b;
}

} // namespace sigcomp

#endif // SIGCOMP_COMMON_BITUTIL_H_
