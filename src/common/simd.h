/**
 * @file
 * Runtime SIMD dispatch for the batch significance kernels.
 *
 * The library is built for a generic baseline (no -march flags), so
 * vectorised kernels cannot be selected at compile time: each x86
 * implementation is compiled with a per-function target attribute and
 * chosen at runtime from CPUID. The active level is process-wide:
 *
 *  - detectedSimdLevel() — the best level this CPU supports, probed
 *    once (AVX2 > SSSE3 > scalar on x86, NEON > scalar on aarch64).
 *  - activeSimdLevel()   — the level the kernels actually dispatch
 *    on. Defaults to the detected level; the SIGCOMP_FORCE_SCALAR
 *    environment variable (any value but "0") pins it to Scalar
 *    before the first kernel call, and setSimdLevel() moves it
 *    anywhere up to the detected level (tests and benchmarks sweep
 *    every available level to pin bit-identity and measure each
 *    implementation).
 *
 * Every kernel is bit-identical across levels — the scalar
 * implementation is the specification, vector levels are verified
 * against it exhaustively in test_simd.cpp — so dispatch is purely a
 * throughput decision and never changes results.
 */

#ifndef SIGCOMP_COMMON_SIMD_H_
#define SIGCOMP_COMMON_SIMD_H_

#include <cstdint>
#include <vector>

namespace sigcomp::simd
{

/**
 * Dispatch levels in increasing preference order within their
 * architecture. Scalar is always available; NEON applies to aarch64
 * builds, SSSE3/AVX2 to x86-64 builds.
 */
enum class SimdLevel : std::uint8_t
{
    Scalar = 0,
    Neon = 1,
    Ssse3 = 2,
    Avx2 = 3,
};

/** Best level this CPU/build supports (probed once, cached). */
SimdLevel detectedSimdLevel();

/**
 * The level the kernels dispatch on right now. First call resolves
 * the SIGCOMP_FORCE_SCALAR override; thereafter only setSimdLevel()
 * changes it.
 */
SimdLevel activeSimdLevel();

/**
 * Pin dispatch to @p level (clamped to detectedSimdLevel(); a level
 * from a foreign architecture falls back to Scalar). Test/benchmark
 * hook — prefer calling it from a single thread before fanning out
 * work. Concurrent use is data-race-free: the level is one atomic,
 * and a pin always sticks even against a racing first-dispatch
 * resolution of SIGCOMP_FORCE_SCALAR (kernels already in flight
 * finish on the level they loaded; results are level-independent by
 * the bit-identity contract).
 */
void setSimdLevel(SimdLevel level);

/** Lower-case level name ("scalar", "ssse3", "avx2", "neon"). */
const char *simdLevelName(SimdLevel level);

/**
 * Every level this process can actually run, in ascending order and
 * always starting with Scalar — the sweep domain for equivalence
 * tests and per-level benchmarks.
 */
std::vector<SimdLevel> availableSimdLevels();

} // namespace sigcomp::simd

#endif // SIGCOMP_COMMON_SIMD_H_
