/**
 * @file
 * Small deterministic PRNG so simulations are reproducible across
 * platforms and standard-library versions.
 */

#ifndef SIGCOMP_COMMON_RNG_H_
#define SIGCOMP_COMMON_RNG_H_

#include "common/types.h"

namespace sigcomp
{

/**
 * xorshift64* generator. Deterministic, fast, and adequate for
 * synthetic workload data; not for cryptography.
 */
class Rng
{
  public:
    /** Construct with a non-zero seed (0 is remapped internally). */
    explicit Rng(DWord seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    DWord
    next64()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Next 32-bit value. */
    Word next32() { return static_cast<Word>(next64() >> 32); }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    Word
    below(Word bound)
    {
        return static_cast<Word>(next64() % bound);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    SWord
    range(SWord lo, SWord hi)
    {
        return lo + static_cast<SWord>(below(
            static_cast<Word>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /**
     * A rough normal deviate (sum of uniforms); adequate for shaping
     * synthetic audio/pixel data.
     */
    double
    gaussian()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += uniform();
        return acc - 6.0;
    }

  private:
    DWord state;
};

} // namespace sigcomp

#endif // SIGCOMP_COMMON_RNG_H_
