/**
 * @file
 * Deterministic fault-injecting Env: the robustness test harness
 * behind the store/session fail-soft guarantees.
 *
 * Wraps any base Env (normally Env::posix()) and injects faults at
 * exact operation indices — every Env call increments one global op
 * counter — either from a script (addFault: "at op 17, ENOSPC") or
 * from a seeded RNG sweep (enableRandomFaults: every op fails with
 * probability p, fault class drawn uniformly). Both modes are fully
 * deterministic: the same seed or script over the same call sequence
 * injects the same faults, so a CI failure is reproducible from the
 * one-line script() dump alone.
 *
 * Fault classes (FaultKind):
 *
 *   Eio        op fails with a Transient status (retryable)
 *   Enospc     op fails with NoSpace (permanent: disk full)
 *   Erofs      op fails with ReadOnly (permanent: store unwritable)
 *   ShortRead  loadFile SILENTLY returns a truncated view (bit rot /
 *              torn read; non-read ops degrade to Eio)
 *   TornWrite  append SILENTLY writes only the first k bytes and
 *              reports success (fsync-less power loss reordering;
 *              non-append ops degrade to Eio)
 *   Crash      the simulated process dies: the op writes at most k
 *              bytes (torn) and this and every later op fails with
 *              Crashed. Reopen the directory with a fresh Env to
 *              model the post-crash restart.
 *
 * The crash-consistency matrix (tests/test_fault.cpp) runs one save
 * to count its ops, then replays it once per op index with a Crash
 * injected there, proving every intermediate on-disk state reopens
 * as either the old segment, the new segment, or a soft failure.
 *
 * Thread-safety: all state is guarded by one mutex; the op order
 * under concurrency is whatever the thread interleaving makes it, so
 * deterministic matrices should drive the env single-threaded.
 */

#ifndef SIGCOMP_COMMON_FAULT_ENV_H_
#define SIGCOMP_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sigcomp
{

/** What to inject when a fault fires (see file comment). */
enum class FaultKind : std::uint8_t
{
    Eio = 0,
    Enospc,
    Erofs,
    ShortRead,
    TornWrite,
    Crash,
};

/** Stable lowercase name of @p kind (scripts, logs). */
const char *faultKindName(FaultKind kind);

/** One scripted fault: fire @p kind when the op counter hits @p opIndex. */
struct FaultSpec
{
    std::uint64_t opIndex = 0;
    FaultKind kind = FaultKind::Eio;
    /**
     * Byte argument for the data-bearing kinds: the truncated view
     * size (ShortRead), the bytes silently written (TornWrite), or
     * the bytes written before dying (Crash during an append).
     * Clamped to the op's actual size.
     */
    std::uint64_t bytes = 0;
};

class FaultInjectingEnv : public Env
{
  public:
    explicit FaultInjectingEnv(Env &base) : base_(base) {}

    /** Script one fault. Later specs at the same index are ignored. */
    void addFault(const FaultSpec &spec);

    /**
     * Seeded random mode: every op faults with probability
     * @p per_mille / 1000, class drawn uniformly from the enabled
     * set (Crash only when @p include_crash). Deterministic per
     * (seed, op sequence). Scripted faults still take precedence.
     */
    void enableRandomFaults(std::uint64_t seed, unsigned per_mille,
                            bool include_crash = false);

    /** Ops performed (or refused) so far. */
    std::uint64_t opCount() const;

    /** Faults actually fired so far. */
    std::uint64_t faultsInjected() const;

    /** True once a Crash fault fired; all later ops fail Crashed. */
    bool crashed() const;

    /**
     * Human-readable, order-stable record of every fault fired —
     * `op <index> <kind> <bytes> <operation> <path>` lines plus the
     * seed header. A failing seeded CI run uploads this as the
     * reproduction recipe.
     */
    std::string script() const;

    /**
     * The op-name sequence performed so far ("create", "append",
     * "sync", "close", "rename", "syncdir", ...), capped at
     * kMaxLoggedOps. Tests pin durability ordering (sync before
     * rename) against it.
     */
    std::vector<std::string> opLog() const;

    // ---- Env interface -------------------------------------------------
    std::unique_ptr<FileView>
    loadFile(const std::string &path, EnvStatus *status) override;
    std::unique_ptr<WritableFile>
    createFile(const std::string &path, EnvStatus *status) override;
    EnvStatus renameFile(const std::string &from,
                         const std::string &to) override;
    EnvStatus removeFile(const std::string &path) override;
    bool fileExists(const std::string &path) override;
    EnvStatus createDirs(const std::string &dir) override;
    std::vector<std::string>
    listDir(const std::string &dir, EnvStatus *status) override;
    EnvStatus syncDir(const std::string &dir) override;

    static constexpr std::size_t kMaxLoggedOps = 100'000;

  private:
    friend class FaultWritableFile;

    /** Outcome of the fault decision for one op. */
    struct Decision
    {
        FaultKind kind = FaultKind::Eio;
        std::uint64_t bytes = 0;
        bool fault = false;
        /** Error to return for the erroring kinds. */
        EnvStatus status;
    };

    /**
     * Count the op, record it, and decide whether a fault fires.
     * @p dataBytes is the op's payload size (append/loadFile) used
     * to clamp byte arguments and to draw random tear points.
     */
    Decision nextOp(const char *op, const std::string &path,
                    std::uint64_t data_bytes);

    Env &base_;
    mutable Mutex mu_;
    std::map<std::uint64_t, FaultSpec> scripted_ SIGCOMP_GUARDED_BY(mu_);
    std::vector<std::string> log_ SIGCOMP_GUARDED_BY(mu_);
    std::vector<std::string> fired_ SIGCOMP_GUARDED_BY(mu_);
    std::uint64_t ops_ SIGCOMP_GUARDED_BY(mu_) = 0;
    std::uint64_t injected_ SIGCOMP_GUARDED_BY(mu_) = 0;
    bool crashed_ SIGCOMP_GUARDED_BY(mu_) = false;
    bool random_ SIGCOMP_GUARDED_BY(mu_) = false;
    bool randomCrash_ SIGCOMP_GUARDED_BY(mu_) = false;
    unsigned perMille_ SIGCOMP_GUARDED_BY(mu_) = 0;
    std::uint64_t seed_ SIGCOMP_GUARDED_BY(mu_) = 0;
    std::uint64_t rngState_ SIGCOMP_GUARDED_BY(mu_) = 0;
};

} // namespace sigcomp

#endif // SIGCOMP_COMMON_FAULT_ENV_H_
