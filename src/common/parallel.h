/**
 * @file
 * Bounded thread-pool executor for the suite-experiment fan-outs.
 *
 * The experiment drivers (analysis/experiments.h) run one independent
 * simulation per workload; ParallelExecutor spreads those across
 * cores while keeping results order-stable: parallelFor(n, f) invokes
 * f(0) .. f(n-1) exactly once each, callers write results into
 * pre-sized slot i, and the assembled output is byte-for-byte the
 * same as a serial loop regardless of scheduling.
 */

#ifndef SIGCOMP_COMMON_PARALLEL_H_
#define SIGCOMP_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/cancel.h"

namespace sigcomp
{

namespace detail
{
struct ExecutorState;
} // namespace detail

/**
 * Fixed-size pool of worker threads executing index-space jobs.
 *
 * Semantics:
 *  - `threads` is the total parallelism, caller included: an
 *    executor built with threads == 1 spawns no workers and
 *    degenerates to a plain serial loop on the calling thread.
 *    threads == 0 resolves to defaultThreadCount().
 *  - parallelFor blocks until every index has been processed; the
 *    calling thread participates in the work.
 *  - If one or more invocations throw, every remaining index still
 *    runs (no holes in result slots), and the exception thrown by
 *    the *lowest* index is rethrown on the calling thread — the same
 *    exception a serial loop would surface first.
 *  - A parallelFor issued from inside a worker (nested parallelism)
 *    runs inline and serially on that worker; no deadlock.
 *  - One job runs at a time per executor; concurrent external
 *    callers are serialised.
 */
class ParallelExecutor
{
  public:
    explicit ParallelExecutor(unsigned threads = 0);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Total parallelism (workers + the participating caller). */
    unsigned threadCount() const { return thread_count_; }

    /**
     * Process-wide shared pool sized to defaultThreadCount().
     * Prefer this over ad-hoc executors so nested fan-outs share one
     * bounded set of threads.
     */
    static ParallelExecutor &global();

    /**
     * Resolution of threads == 0: the SIGCOMP_THREADS environment
     * variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency(), never less than 1.
     */
    static unsigned defaultThreadCount();

    /**
     * Invoke fn(i) for i in [0, n), blocking until all complete.
     *
     * @p cancel (optional) is polled as each index is claimed: once
     * the token fires, remaining indices are skipped (claimed and
     * retired without running the body) so the call returns at task
     * granularity instead of draining the queue. Skipping creates
     * holes — only cancellation-aware callers that track per-index
     * completion themselves should pass a token.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn,
                const CancelToken *cancel = nullptr)
    {
        std::function<void(std::size_t)> body(std::ref(fn));
        run(n, body, cancel);
    }

    /**
     * Order-stable map: out[i] = fn(items[i]). The result type must
     * be default-constructible (slots are pre-sized).
     */
    template <typename T, typename Fn>
    auto
    parallelMap(const std::vector<T> &items, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &>>
    {
        std::vector<std::invoke_result_t<Fn &, const T &>> out(
            items.size());
        parallelFor(items.size(),
                    [&](std::size_t i) { out[i] = fn(items[i]); });
        return out;
    }

  private:
    void run(std::size_t n, const std::function<void(std::size_t)> &body,
             const CancelToken *cancel = nullptr);

    unsigned thread_count_;
    detail::ExecutorState *state_;
};

} // namespace sigcomp

#endif // SIGCOMP_COMMON_PARALLEL_H_
