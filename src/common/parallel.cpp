#include "common/parallel.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"

namespace sigcomp
{

namespace detail
{

/**
 * One in-flight parallelFor. Indices are self-scheduled off an
 * atomic counter, so load imbalance between workloads evens out.
 * Shared ownership (submitter + every worker that saw the job) keeps
 * the object alive until the last straggler is done touching it.
 */
struct Job
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    /** Cooperative stop: fired -> remaining indices retire unrun. */
    const CancelToken *cancel = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};

    Mutex error_mutex;
    std::size_t error_index SIGCOMP_GUARDED_BY(error_mutex) =
        std::numeric_limits<std::size_t>::max();
    std::exception_ptr error SIGCOMP_GUARDED_BY(error_mutex);

    void
    recordError(std::size_t index, std::exception_ptr e)
    {
        MutexLock lock(error_mutex);
        if (index < error_index) {
            error_index = index;
            error = std::move(e);
        }
    }
};

struct ExecutorState
{
    Mutex mutex;
    /** Signals workers that a job was published (or shutdown). */
    std::condition_variable work_ready;
    /** Signals job completion / retirement / slot-free transitions. */
    std::condition_variable work_done;
    std::shared_ptr<Job> job SIGCOMP_GUARDED_BY(mutex);
    bool shutdown SIGCOMP_GUARDED_BY(mutex) = false;
    /** Touched only by the owning ParallelExecutor's ctor/dtor. */
    std::vector<std::thread> workers;
};

namespace
{

/** True on pool-owned threads: nested fan-outs run inline. */
thread_local bool inside_worker = false;

/** Claim and run indices until the job's index space is exhausted. */
void
drainJob(Job &job)
{
    // Process-registry handles: the executor is a process-wide
    // component (there is one global pool plus short-lived scoped
    // ones), so its metrics don't belong to any one Session's
    // namespace. Function-local statics bind once.
    static telemetry::Gauge &queue_depth =
        telemetry::Registry::process().gauge("executor.queue_depth");
    static telemetry::Histogram &task_nanos =
        telemetry::Registry::process().histogram("executor.task_nanos",
                                                 telemetry::Unit::Nanos);
    for (;;) {
        const std::size_t i =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n) {
            queue_depth.set(0);
            return;
        }
        // Unclaimed indices remaining after this claim.
        queue_depth.set(static_cast<std::int64_t>(job.n - i - 1));
        // Cancelled jobs drain fast: claim and retire without
        // running the body. The done count still reaches n, so the
        // submitter's completion wait is unchanged.
        if (cancelRequested(job.cancel)) {
            job.done.fetch_add(1, std::memory_order_acq_rel);
            continue;
        }
        const bool timed = telemetry::enabled();
        const std::uint64_t t0 = timed ? telemetry::detail::spanClockNanos()
                                       : 0;
        {
            SIGCOMP_SPAN("executor.task");
            try {
                (*job.body)(i);
            } catch (...) {
                job.recordError(i, std::current_exception());
            }
        }
        if (timed)
            task_nanos.record(telemetry::detail::spanClockNanos() - t0);
        job.done.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
workerLoop(ExecutorState *state, unsigned index)
{
    inside_worker = true;
    // Per-worker trace track (the submitting thread keeps its own).
    telemetry::setThreadName("executor-worker-" + std::to_string(index));
    for (;;) {
        std::shared_ptr<Job> job;
        {
            UniqueLock lock(state->mutex);
            while (!state->shutdown && state->job == nullptr)
                state->work_ready.wait(lock.native());
            if (state->shutdown)
                return;
            job = state->job;
        }
        drainJob(*job);
        {
            UniqueLock lock(state->mutex);
            // Wake the submitter (it waits for done == n). Notifying
            // with the mutex held pairs with its locked predicate
            // check, so the final done increment is never missed.
            state->work_done.notify_all();
            // Park until this job is retired so we never drain the
            // same job twice. Pointer comparison only; the submitter
            // may already have returned.
            while (!state->shutdown && state->job == job)
                state->work_done.wait(lock.native());
            if (state->shutdown)
                return;
        }
    }
}

} // namespace
} // namespace detail

ParallelExecutor::ParallelExecutor(unsigned threads)
    : thread_count_(threads == 0 ? defaultThreadCount() : threads),
      state_(new detail::ExecutorState)
{
    for (unsigned i = 1; i < thread_count_; ++i)
        state_->workers.emplace_back(detail::workerLoop, state_, i);
}

ParallelExecutor::~ParallelExecutor()
{
    {
        MutexLock lock(state_->mutex);
        state_->shutdown = true;
    }
    state_->work_ready.notify_all();
    state_->work_done.notify_all();
    for (std::thread &t : state_->workers)
        t.join();
    delete state_;
}

ParallelExecutor &
ParallelExecutor::global()
{
    static ParallelExecutor pool(0);
    return pool;
}

unsigned
ParallelExecutor::defaultThreadCount()
{
    if (const char *env = std::getenv("SIGCOMP_THREADS")) {
        // Cap well above any real machine: a mistyped huge value
        // must not translate into billions of std::thread spawns.
        constexpr long max_threads = 1024;
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(env, &end, 10);
        if (errno == 0 && end != env && *end == '\0' && v > 0 &&
            v <= max_threads) {
            return static_cast<unsigned>(v);
        }
        SC_WARN("ignoring SIGCOMP_THREADS='", env,
                "' (want an integer in [1, ", max_threads, "])");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ParallelExecutor::run(std::size_t n,
                      const std::function<void(std::size_t)> &body,
                      const CancelToken *cancel)
{
    if (n == 0)
        return;

    // Serial fast paths: single-thread executors, single-element
    // jobs, and nested calls from inside a pool worker all run
    // inline on the calling thread. Exceptions propagate directly,
    // satisfying the lowest-index guarantee trivially.
    if (thread_count_ <= 1 || n == 1 || detail::inside_worker) {
        std::exception_ptr first_error;
        for (std::size_t i = 0; i < n; ++i) {
            if (cancelRequested(cancel))
                break;
            try {
                body(i);
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);
        return;
    }

    auto job = std::make_shared<detail::Job>();
    job->n = n;
    job->body = &body;
    job->cancel = cancel;

    {
        UniqueLock lock(state_->mutex);
        // Serialise external submitters: one published job at a time.
        while (state_->job != nullptr)
            state_->work_done.wait(lock.native());
        state_->job = job;
    }
    // A worker parked on work_done (waiting for the *previous* job's
    // retirement) re-checks its predicate on work_done; one parked
    // idle waits on work_ready. Poke both.
    state_->work_ready.notify_all();
    state_->work_done.notify_all();

    // The submitter is one of the threadCount() participants.
    detail::drainJob(*job);

    {
        UniqueLock lock(state_->mutex);
        while (job->done.load(std::memory_order_acquire) != n)
            state_->work_done.wait(lock.native());
        state_->job = nullptr; // retire: workers may re-arm
    }
    state_->work_done.notify_all();

    // Every index has retired (done == n observed above), but take
    // the error lock anyway: it is what the annotations promise, and
    // it costs one uncontended acquire per job.
    std::exception_ptr error;
    {
        MutexLock lock(job->error_mutex);
        error = job->error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace sigcomp
