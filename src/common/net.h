/**
 * @file
 * The socket seam: every byte the serving layer (src/server/) moves
 * over a network connection goes through a sigcomp::net::Conn, the
 * byte-stream sibling of the sigcomp::Env filesystem seam
 * (common/env.h).
 *
 * Raw socket syscalls (socket/bind/listen/accept/recv/send/...) live
 * ONLY in net.cpp — sigcomp_lint's env-seam check rejects them
 * anywhere in src/server/ — so the daemon's request path runs
 * unchanged over three transports:
 *
 *   - loopback/real TCP (listenTcp/connectTcp) in production and the
 *     CI daemon smoke job,
 *   - an in-process memory pipe (memoryConnPair) in the unit and
 *     TSan concurrency tests — deterministic, no ports, no sandbox
 *     friction,
 *   - and, because every operation reports the same EnvStatus fault
 *     taxonomy as Env, fault-injection wrappers can interpose the
 *     seam the way FaultInjectingEnv interposes file I/O.
 *
 * Connections are blocking byte streams. peerClosed() is the one
 * non-blocking probe: the daemon's disconnect watcher polls it to
 * cancel in-flight plan runs whose client has hung up (wired into
 * CancelSource, see server/daemon.h).
 *
 * Thread-safety: one Conn endpoint is used by one thread at a time,
 * EXCEPT peerClosed(), which the watcher thread may call
 * concurrently with the owner's read/write — implementations keep
 * that probe safe (the POSIX probe is a MSG_PEEK on an fd the owner
 * holds open; the memory pipe takes its internal lock).
 */

#ifndef SIGCOMP_COMMON_NET_H_
#define SIGCOMP_COMMON_NET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/env.h"

namespace sigcomp::net
{

/** One established bidirectional byte-stream connection. */
class Conn
{
  public:
    virtual ~Conn() = default;

    /**
     * Blocking read of up to @p n bytes into @p buf. On success
     * *got > 0; *got == 0 with an ok() status means orderly EOF (the
     * peer finished sending). Transient faults (EINTR) are retried
     * internally; anything else reports through the EnvStatus.
     */
    virtual EnvStatus read(void *buf, std::size_t n,
                           std::size_t *got) = 0;

    /** Blocking write of exactly @p n bytes (short writes resumed). */
    virtual EnvStatus writeAll(const void *buf, std::size_t n) = 0;

    /**
     * Has the peer hung up? Non-blocking, callable from a thread
     * other than the reader/writer (the daemon's disconnect
     * watcher). True only once all sent bytes have been consumed —
     * a closed peer with unread data still counts as live input.
     */
    virtual bool peerClosed() = 0;

    /** Close both directions. Idempotent; destructor closes too. */
    virtual void closeConn() = 0;
};

/** A listening server socket handing out accepted Conns. */
class Listener
{
  public:
    virtual ~Listener() = default;

    /**
     * Block until a client connects. nullptr after stopListening()
     * (orderly shutdown, status ok) or on a non-transient accept
     * fault (status set).
     */
    virtual std::unique_ptr<Conn> acceptConn(EnvStatus *status) = 0;

    /**
     * Unblock any acceptConn() in flight and refuse further
     * connections. Callable from another thread (the daemon's
     * signal-wait thread); idempotent.
     */
    virtual void stopListening() = 0;

    /** The bound port (resolves port 0 to the kernel's choice). */
    virtual std::uint16_t port() const = 0;
};

/**
 * Listen on @p addr:@p port (TCP, SO_REUSEADDR; port 0 picks an
 * ephemeral port — read it back via port()). @p addr is a dotted
 * IPv4 address; "127.0.0.1" serves loopback only, "0.0.0.0" all
 * interfaces. nullptr + @p why on failure.
 */
std::unique_ptr<Listener> listenTcp(const std::string &addr,
                                    std::uint16_t port,
                                    std::string *why = nullptr);

/** Connect to @p addr:@p port. nullptr + @p why on failure. */
std::unique_ptr<Conn> connectTcp(const std::string &addr,
                                 std::uint16_t port,
                                 std::string *why = nullptr);

/**
 * An in-process connected pair: bytes written to .first are read
 * from .second and vice versa, with Conn's exact blocking/EOF/
 * peerClosed semantics. The test transport: deterministic, no
 * sockets, safe under TSan and sandboxes.
 */
std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>>
memoryConnPair();

} // namespace sigcomp::net

#endif // SIGCOMP_COMMON_NET_H_
