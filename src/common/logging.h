/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, malformed program); exits cleanly.
 * warn()   — something works but not as well as it should.
 * inform() — neutral status for the user.
 *
 * warn()/inform() respect a process log level: SIGCOMP_LOG=quiet
 * silences both, =warn keeps warnings only, =info (the default)
 * keeps both. panic()/fatal() always print — suppressing the
 * message that explains an abort helps nobody.
 */

#ifndef SIGCOMP_COMMON_LOGGING_H_
#define SIGCOMP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sigcomp
{

/** Verbosity floor for SC_WARN/SC_INFORM (ordered: each level
 * includes the ones below it). */
enum class LogLevel : int { Quiet = 0, Warn = 1, Info = 2 };

/** Current level: setLogLevel() if called, else SIGCOMP_LOG, else Info. */
LogLevel logLevel();

/** Override the level programmatically (wins over SIGCOMP_LOG). */
void setLogLevel(LogLevel level);

namespace detail
{

/** Format the variadic message parts into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: only for internal simulator bugs. */
#define SC_PANIC(...) \
    ::sigcomp::detail::panicImpl(__FILE__, __LINE__, \
        ::sigcomp::detail::formatMessage(__VA_ARGS__))

/** Exit with a message: for unrecoverable user/configuration errors. */
#define SC_FATAL(...) \
    ::sigcomp::detail::fatalImpl(__FILE__, __LINE__, \
        ::sigcomp::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define SC_WARN(...) \
    ::sigcomp::detail::warnImpl(::sigcomp::detail::formatMessage(__VA_ARGS__))

/** Informational message to stderr. */
#define SC_INFORM(...) \
    ::sigcomp::detail::informImpl( \
        ::sigcomp::detail::formatMessage(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define SC_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SC_PANIC("assertion '" #cond "' failed: ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace sigcomp

#endif // SIGCOMP_COMMON_LOGGING_H_
