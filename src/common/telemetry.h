/**
 * @file
 * Unified telemetry layer: a thread-safe metrics registry
 * (counters, gauges, fixed-bucket histograms behind cheap handles)
 * plus a scoped-span tracer draining to Chrome trace-event JSON.
 *
 * Design constraints, in order:
 *
 *  1. Counters are the engine's accounting (captures, store loads,
 *     health counters) and are ALWAYS live — reports depend on
 *     them.  Gauges and histograms are observability-only and are
 *     gated by the runtime enable flag (SIGCOMP_TELEMETRY=off or
 *     setEnabled(false)) so the disabled-mode cost of a histogram
 *     site is one relaxed atomic load.
 *  2. Spans are a pure side channel.  SIGCOMP_SPAN's fast path when
 *     tracing is inactive is one relaxed atomic load and a branch;
 *     no clock is read.  When active, each thread appends to a
 *     private fixed-capacity buffer (no locks, no allocation after
 *     first use) published with release/acquire so a concurrent
 *     trace writer reads only completed entries — TSan-clean by
 *     construction, not by suppression.
 *  3. Snapshots are deterministic: name-sorted, values only (no
 *     wall times), so a snapshot delta can be embedded in golden-
 *     pinned report bytes.
 *
 * Tracing activates via SIGCOMP_TRACE=out.json (any binary linking
 * the library: started at static-init, flushed at exit) or
 * programmatically via StudyPlan::traceFile() / startTracing().
 *
 * Compile-time kill switch: configuring with -DSIGCOMP_TELEMETRY=OFF
 * defines SIGCOMP_TELEMETRY_DISABLED, which compiles SIGCOMP_SPAN to
 * nothing and pins enabled() to false (gauges/histograms become
 * dead stores the optimizer removes).  Counters and the registry
 * survive even then — they are accounting, not telemetry.
 */

#ifndef SIGCOMP_COMMON_TELEMETRY_H
#define SIGCOMP_COMMON_TELEMETRY_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace sigcomp
{
namespace telemetry
{

/** What a metric's value measures — drives report formatting. */
enum class Unit : std::uint8_t { Count, Bytes, Nanos };

/** Metric shape. */
enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

/** Stable name for a unit ("count", "bytes", "nanos"). */
const char *unitName(Unit unit);

namespace detail
{
/** Runtime enable flag for gauges/histograms (spans have their own). */
extern std::atomic<bool> g_enabled;
/** True while a trace collection window is open. */
extern std::atomic<bool> g_tracing;
} // namespace detail

/**
 * Whether gauge/histogram recording is live.  Counters ignore this:
 * they are engine accounting, not optional observability.
 */
inline bool
enabled()
{
#if defined(SIGCOMP_TELEMETRY_DISABLED)
    return false;
#else
    return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/** Flip gauge/histogram recording at runtime (overrides SIGCOMP_TELEMETRY). */
void setEnabled(bool on);

/**
 * Monotonic counter.  Handles are stable references into a Registry
 * and never invalidated; inc() is one relaxed fetch_add.
 */
class Counter
{
  public:
    void
    inc(std::uint64_t by = 1)
    {
        value_.fetch_add(by, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous level (e.g. executor queue depth).  Gated by enabled(). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (enabled())
            value_.store(v, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket histogram over unsigned 64-bit samples.  Bucket i
 * holds samples whose bit width is i (bucket 0 is exactly v == 0),
 * i.e. power-of-two size/latency classes — deterministic across
 * platforms, no floating point, 65 buckets total.  Gated by
 * enabled().
 *
 * count/sum/bucket updates are individually atomic but not grouped;
 * a snapshot taken while writers are live may be momentarily
 * inconsistent between the three.  Report snapshots are taken at
 * quiescent points (after joins), where they are exact.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    void
    record(std::uint64_t v)
    {
        if (!enabled())
            return;
        const unsigned b = static_cast<unsigned>(std::bit_width(v));
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry; // snapshot() reads buckets_ directly

    std::atomic<std::uint64_t> buckets_[kBuckets]{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/** One metric's state at snapshot time. */
struct SnapshotMetric {
    std::string name;
    Kind kind = Kind::Counter;
    Unit unit = Unit::Count;
    /// Counter value (Kind::Counter only).
    std::uint64_t value = 0;
    /// Instantaneous level (Kind::Gauge only).
    std::int64_t gauge = 0;
    /// Histogram totals (Kind::Histogram only).
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Histogram buckets with trailing zeros trimmed.
    std::vector<std::uint64_t> buckets;
};

/**
 * A deterministic, name-sorted copy of a registry's metrics.
 * Default-constructed == empty (the report writer emits an empty
 * telemetry block for it).
 */
struct Snapshot {
    std::vector<SnapshotMetric> metrics;

    /**
     * Per-metric difference after - before.  Metrics absent from
     * @p before (registered mid-window) difference against zero;
     * gauges carry the after-value unchanged (levels, not totals).
     */
    static Snapshot delta(const Snapshot &before, const Snapshot &after);

    /**
     * Counter value (or histogram sample count) for @p name; 0 when
     * absent — report plumbing reads legacy fields through this.
     */
    std::uint64_t value(const std::string &name) const;
};

/**
 * Named metric registry.  Lookup (counter()/gauge()/histogram())
 * takes a mutex and is meant for setup paths; the returned handle
 * references are stable for the registry's lifetime and are the
 * hot-path interface.  Re-requesting a name returns the same handle;
 * re-requesting it as a different kind is a programming error and
 * panics.
 *
 * Registries are instantiable so a component (TraceCache) can own a
 * private, per-instance metric namespace; process() is the shared
 * fallback for process-wide components (ParallelExecutor, stores
 * constructed without an explicit registry).
 */
class Registry
{
  public:
    // Out-of-line: Slot is incomplete here, and even the defaulted
    // constructor potentially invokes the slot map's destructor.
    Registry();
    ~Registry();
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Process-wide registry (never destroyed). */
    static Registry &process();

    Counter &counter(const std::string &name, Unit unit = Unit::Count)
        SIGCOMP_EXCLUDES(mu_);
    Gauge &gauge(const std::string &name, Unit unit = Unit::Count)
        SIGCOMP_EXCLUDES(mu_);
    Histogram &histogram(const std::string &name, Unit unit = Unit::Count)
        SIGCOMP_EXCLUDES(mu_);

    /** Name-sorted deterministic copy of every metric. */
    Snapshot snapshot() const SIGCOMP_EXCLUDES(mu_);

  private:
    struct Slot;

    Slot &slot(const std::string &name, Kind kind, Unit unit)
        SIGCOMP_EXCLUDES(mu_);

    mutable Mutex mu_;
    /// std::map: stable addresses via unique_ptr, iteration already
    /// name-sorted for snapshot().
    std::map<std::string, std::unique_ptr<Slot>> slots_ SIGCOMP_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

namespace detail
{
std::uint64_t spanClockNanos();
void emitSpan(const char *label, std::uint64_t start_ns);
} // namespace detail

/**
 * RAII scope measuring one span.  Instantiate via SIGCOMP_SPAN so
 * the label survives the scope (must be a string literal / static
 * string: the tracer stores the pointer, not a copy).
 */
class SpanScope
{
  public:
    explicit SpanScope(const char *label)
        : label_(detail::g_tracing.load(std::memory_order_relaxed) ? label
                                                                   : nullptr)
    {
        if (label_ != nullptr)
            start_ = detail::spanClockNanos();
    }

    ~SpanScope()
    {
        if (label_ != nullptr)
            detail::emitSpan(label_, start_);
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    const char *label_;
    std::uint64_t start_ = 0;
};

#if defined(SIGCOMP_TELEMETRY_DISABLED)
#define SIGCOMP_SPAN(label)                                                   \
    do {                                                                      \
    } while (0)
#else
#define SIGCOMP_SPAN_CONCAT2(a, b) a##b
#define SIGCOMP_SPAN_CONCAT(a, b) SIGCOMP_SPAN_CONCAT2(a, b)
#define SIGCOMP_SPAN(label)                                                   \
    ::sigcomp::telemetry::SpanScope SIGCOMP_SPAN_CONCAT(sigcomp_span_,        \
                                                        __COUNTER__)(label)
#endif

/** Open a trace collection window (idempotent; sets the time origin once). */
void startTracing();

/** Close the collection window.  Recorded spans stay writable to JSON. */
void stopTracing();

/** Whether a collection window is currently open. */
bool tracingActive();

/**
 * Name the calling thread's track in the trace ("executor-worker-3").
 * Effective whether called before or after the thread's first span.
 */
void setThreadName(const std::string &name);

/**
 * Write every span recorded since the first startTracing() as Chrome
 * trace-event JSON (chrome://tracing / Perfetto loadable).
 * Non-draining and idempotent: a later write sees a superset.
 */
void writeTrace(std::FILE *f);

/** writeTrace() to @p path; false + *why on I/O failure. */
bool writeTrace(const std::string &path, std::string *why = nullptr);

/** Spans discarded because a thread buffer filled (diagnostic only). */
std::uint64_t droppedSpans();

} // namespace telemetry
} // namespace sigcomp

#endif // SIGCOMP_COMMON_TELEMETRY_H
