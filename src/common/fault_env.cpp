#include "common/fault_env.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace sigcomp
{

namespace
{

/** xorshift64* step (same generator as common/rng.h, inlined so the
 *  env owns its raw state word under mu_). */
std::uint64_t
xorshiftNext(std::uint64_t &state)
{
    std::uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545F4914F6CDD1DULL;
}

EnvStatus
faultStatus(FaultKind kind, const char *op, const std::string &path)
{
    const std::string where =
        std::string(op) + " '" + path + "': injected " +
        faultKindName(kind);
    switch (kind) {
    case FaultKind::Eio:
        return EnvStatus::error(EnvFault::Transient, where);
    case FaultKind::Enospc:
        return EnvStatus::error(EnvFault::NoSpace, where);
    case FaultKind::Erofs:
        return EnvStatus::error(EnvFault::ReadOnly, where);
    case FaultKind::Crash:
        return EnvStatus::error(EnvFault::Crashed, where);
    case FaultKind::ShortRead:
    case FaultKind::TornWrite:
        // Silent kinds report success; this status is only used when
        // the kind degrades to an error on a mismatched op.
        return EnvStatus::error(EnvFault::Transient, where);
    }
    return EnvStatus::error(EnvFault::Other, where);
}

/** Truncated copy of a base FileView (the ShortRead payload). */
class TruncatedView : public Env::FileView
{
  public:
    TruncatedView(const Env::FileView &base, std::size_t n)
        : bytes_(base.data(), base.data() + std::min(n, base.size()))
    {}

    const std::uint8_t *data() const override { return bytes_.data(); }
    std::size_t size() const override { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Eio: return "eio";
    case FaultKind::Enospc: return "enospc";
    case FaultKind::Erofs: return "erofs";
    case FaultKind::ShortRead: return "short-read";
    case FaultKind::TornWrite: return "torn-write";
    case FaultKind::Crash: return "crash";
    }
    return "?";
}

/**
 * Wraps a base WritableFile so its append/sync/close count as ops and
 * can fault. A torn append (TornWrite, or Crash with a byte budget)
 * forwards only the first k bytes to the base file.
 */
class FaultWritableFile : public Env::WritableFile
{
  public:
    FaultWritableFile(std::unique_ptr<Env::WritableFile> base,
                      FaultInjectingEnv &env, std::string path)
        : base_(std::move(base)), env_(env), path_(std::move(path))
    {}

    EnvStatus
    append(const void *data, std::size_t n) override
    {
        const auto d = env_.nextOp("append", path_, n);
        if (!d.fault)
            return base_->append(data, n);
        const std::size_t keep =
            std::min<std::size_t>(static_cast<std::size_t>(d.bytes), n);
        switch (d.kind) {
        case FaultKind::TornWrite:
            // Silent tear: part of the payload lands, success is
            // reported anyway — the fsync-less power-loss shape.
            if (keep > 0)
                base_->append(data, keep);
            return EnvStatus::good();
        case FaultKind::Crash:
            if (keep > 0)
                base_->append(data, keep);
            base_->sync();
            return d.status;
        default:
            return d.status;
        }
    }

    EnvStatus
    sync() override
    {
        const auto d = env_.nextOp("sync", path_, 0);
        if (d.fault)
            return d.status;
        return base_->sync();
    }

    EnvStatus
    close() override
    {
        const auto d = env_.nextOp("close", path_, 0);
        if (d.fault) {
            base_->close(); // release the fd either way
            return d.status;
        }
        return base_->close();
    }

  private:
    std::unique_ptr<Env::WritableFile> base_;
    FaultInjectingEnv &env_;
    std::string path_;
};

void
FaultInjectingEnv::addFault(const FaultSpec &spec)
{
    MutexLock lock(mu_);
    scripted_.emplace(spec.opIndex, spec);
}

void
FaultInjectingEnv::enableRandomFaults(std::uint64_t seed,
                                      unsigned per_mille,
                                      bool include_crash)
{
    MutexLock lock(mu_);
    random_ = true;
    randomCrash_ = include_crash;
    perMille_ = std::min(per_mille, 1000u);
    seed_ = seed;
    rngState_ = seed ? seed : 0x9E3779B97F4A7C15ULL;
}

std::uint64_t
FaultInjectingEnv::opCount() const
{
    MutexLock lock(mu_);
    return ops_;
}

std::uint64_t
FaultInjectingEnv::faultsInjected() const
{
    MutexLock lock(mu_);
    return injected_;
}

bool
FaultInjectingEnv::crashed() const
{
    MutexLock lock(mu_);
    return crashed_;
}

std::string
FaultInjectingEnv::script() const
{
    MutexLock lock(mu_);
    std::string out = "# sigcomp fault script\n";
    if (random_) {
        char line[96];
        std::snprintf(line, sizeof line,
                      "# seed %llu per-mille %u crash %d\n",
                      static_cast<unsigned long long>(seed_), perMille_,
                      randomCrash_ ? 1 : 0);
        out += line;
    }
    for (const std::string &f : fired_) {
        out += f;
        out += '\n';
    }
    return out;
}

std::vector<std::string>
FaultInjectingEnv::opLog() const
{
    MutexLock lock(mu_);
    return log_;
}

FaultInjectingEnv::Decision
FaultInjectingEnv::nextOp(const char *op, const std::string &path,
                          std::uint64_t data_bytes)
{
    MutexLock lock(mu_);
    const std::uint64_t index = ops_++;
    if (log_.size() < kMaxLoggedOps)
        log_.push_back(std::string(op) + " " + path);

    Decision d;
    if (crashed_) {
        // The simulated process is dead; nothing succeeds any more.
        d.fault = true;
        d.kind = FaultKind::Crash;
        d.bytes = 0;
        d.status = faultStatus(FaultKind::Crash, op, path);
        return d;
    }

    const auto it = scripted_.find(index);
    if (it != scripted_.end()) {
        d.fault = true;
        d.kind = it->second.kind;
        // data_bytes is 0 when the op's size is unknown at decision
        // time (loadFile); the op clamps against the real size then.
        d.bytes = data_bytes > 0 ? std::min(it->second.bytes, data_bytes)
                                 : it->second.bytes;
    } else if (random_ && perMille_ > 0 &&
               xorshiftNext(rngState_) % 1000 < perMille_) {
        const unsigned kinds = randomCrash_ ? 6 : 5;
        d.fault = true;
        d.kind = static_cast<FaultKind>(xorshiftNext(rngState_) % kinds);
        d.bytes = data_bytes > 0
                      ? xorshiftNext(rngState_) % data_bytes
                      : 0;
    }
    if (!d.fault)
        return d;

    // Degrade data-bearing kinds on ops that carry no data stream:
    // a short read of a rename makes no sense, so inject EIO there.
    const bool is_append = std::string_view(op) == "append";
    const bool is_load = std::string_view(op) == "load";
    if (d.kind == FaultKind::TornWrite && !is_append)
        d.kind = FaultKind::Eio;
    if (d.kind == FaultKind::ShortRead && !is_load)
        d.kind = FaultKind::Eio;

    if (d.kind == FaultKind::Crash)
        crashed_ = true;
    ++injected_;
    {
        char line[64];
        std::snprintf(line, sizeof line, "op %llu %s %llu ",
                      static_cast<unsigned long long>(index),
                      faultKindName(d.kind),
                      static_cast<unsigned long long>(d.bytes));
        fired_.push_back(std::string(line) + op + " " + path);
    }
    d.status = faultStatus(d.kind, op, path);
    return d;
}

std::unique_ptr<Env::FileView>
FaultInjectingEnv::loadFile(const std::string &path, EnvStatus *status)
{
    const auto d = nextOp("load", path, 0);
    if (d.fault && d.kind != FaultKind::ShortRead) {
        if (status != nullptr)
            *status = d.status;
        return nullptr;
    }
    EnvStatus st;
    auto view = base_.loadFile(path, &st);
    if (view == nullptr) {
        if (status != nullptr)
            *status = st;
        return nullptr;
    }
    if (d.fault && d.kind == FaultKind::ShortRead) {
        // Silent truncation: callers see a successful load of a
        // shorter file, exactly like bit rot truncating the tail.
        // Scripted faults pin the cut; random ones halve the file.
        const std::size_t keep =
            d.bytes > 0 ? std::min<std::size_t>(
                              static_cast<std::size_t>(d.bytes),
                              view->size())
                        : view->size() / 2;
        view = std::make_unique<TruncatedView>(*view, keep);
    }
    if (status != nullptr)
        *status = EnvStatus::good();
    return view;
}

std::unique_ptr<Env::WritableFile>
FaultInjectingEnv::createFile(const std::string &path, EnvStatus *status)
{
    const auto d = nextOp("create", path, 0);
    if (d.fault) {
        if (status != nullptr)
            *status = d.status;
        return nullptr;
    }
    EnvStatus st;
    auto base = base_.createFile(path, &st);
    if (base == nullptr) {
        if (status != nullptr)
            *status = st;
        return nullptr;
    }
    if (status != nullptr)
        *status = EnvStatus::good();
    return std::make_unique<FaultWritableFile>(std::move(base), *this,
                                               path);
}

EnvStatus
FaultInjectingEnv::renameFile(const std::string &from,
                              const std::string &to)
{
    const auto d = nextOp("rename", from, 0);
    if (d.fault)
        return d.status;
    return base_.renameFile(from, to);
}

EnvStatus
FaultInjectingEnv::removeFile(const std::string &path)
{
    const auto d = nextOp("remove", path, 0);
    if (d.fault)
        return d.status;
    return base_.removeFile(path);
}

bool
FaultInjectingEnv::fileExists(const std::string &path)
{
    // Existence probes are not counted: they are cheap, read-only,
    // and counting them would make crash-matrix op indices depend on
    // incidental cache probing.
    {
        MutexLock lock(mu_);
        if (crashed_)
            return false;
    }
    return base_.fileExists(path);
}

EnvStatus
FaultInjectingEnv::createDirs(const std::string &dir)
{
    const auto d = nextOp("mkdirs", dir, 0);
    if (d.fault)
        return d.status;
    return base_.createDirs(dir);
}

std::vector<std::string>
FaultInjectingEnv::listDir(const std::string &dir, EnvStatus *status)
{
    const auto d = nextOp("list", dir, 0);
    if (d.fault) {
        if (status != nullptr)
            *status = d.status;
        return {};
    }
    return base_.listDir(dir, status);
}

EnvStatus
FaultInjectingEnv::syncDir(const std::string &dir)
{
    const auto d = nextOp("syncdir", dir, 0);
    if (d.fault)
        return d.status;
    return base_.syncDir(dir);
}

} // namespace sigcomp
