/**
 * @file
 * Telemetry implementation: registry slots, the span tracer's
 * thread-local buffers, and the Chrome trace-event JSON writer.
 *
 * Concurrency discipline (pinned by tests/test_telemetry.cpp under
 * TSan):
 *  - Registry: name->slot map under mu_; handle hot paths are
 *    relaxed atomics on stable slots.
 *  - Tracer: each thread owns a fixed-capacity buffer registered
 *    once under TracerState::mu.  The owning thread writes
 *    entries[i] then publishes with count.store(release); the
 *    writer reads count.load(acquire) and only entries below it.
 *    ThreadBuffer::name is only read/written under TracerState::mu
 *    (it lives outside the lock-free path).
 *  - All long-lived singletons are intentionally leaked so atexit
 *    flushing and late worker threads never race static
 *    destruction.
 */

#include "common/telemetry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace sigcomp
{
namespace telemetry
{

namespace detail
{
std::atomic<bool> g_enabled{true};
std::atomic<bool> g_tracing{false};
} // namespace detail

const char *
unitName(Unit unit)
{
    switch (unit) {
      case Unit::Count:
        return "count";
      case Unit::Bytes:
        return "bytes";
      case Unit::Nanos:
        return "nanos";
    }
    return "count";
}

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Slot {
    Slot(Kind kind_in, Unit unit_in) : kind(kind_in), unit(unit_in) {}

    const Kind kind;
    const Unit unit;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry &
Registry::process()
{
    // Leaked: worker threads and atexit hooks may touch process
    // metrics after main() returns.
    static Registry *registry = new Registry;
    return *registry;
}

Registry::Slot &
Registry::slot(const std::string &name, Kind kind, Unit unit)
{
    MutexLock lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end())
        it = slots_.emplace(name, std::make_unique<Slot>(kind, unit)).first;
    SC_ASSERT(it->second->kind == kind,
              "telemetry metric '", name, "' re-registered as a different kind");
    return *it->second;
}

Counter &
Registry::counter(const std::string &name, Unit unit)
{
    return slot(name, Kind::Counter, unit).counter;
}

Gauge &
Registry::gauge(const std::string &name, Unit unit)
{
    return slot(name, Kind::Gauge, unit).gauge;
}

Histogram &
Registry::histogram(const std::string &name, Unit unit)
{
    return slot(name, Kind::Histogram, unit).histogram;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    MutexLock lock(mu_);
    snap.metrics.reserve(slots_.size());
    // std::map iteration order is the name sort the Snapshot
    // contract promises.
    for (const auto &[name, slot] : slots_) {
        SnapshotMetric m;
        m.name = name;
        m.kind = slot->kind;
        m.unit = slot->unit;
        switch (slot->kind) {
          case Kind::Counter:
            m.value = slot->counter.value();
            break;
          case Kind::Gauge:
            m.gauge = slot->gauge.value();
            break;
          case Kind::Histogram:
            m.count = slot->histogram.count();
            m.sum = slot->histogram.sum();
            m.buckets.resize(Histogram::kBuckets);
            for (unsigned i = 0; i < Histogram::kBuckets; ++i)
                m.buckets[i] = slot->histogram.buckets_[i].load(
                    std::memory_order_relaxed);
            while (!m.buckets.empty() && m.buckets.back() == 0)
                m.buckets.pop_back();
            break;
        }
        snap.metrics.push_back(std::move(m));
    }
    return snap;
}

Snapshot
Snapshot::delta(const Snapshot &before, const Snapshot &after)
{
    Snapshot out;
    out.metrics.reserve(after.metrics.size());
    std::size_t bi = 0;
    for (const SnapshotMetric &a : after.metrics) {
        while (bi < before.metrics.size() && before.metrics[bi].name < a.name)
            ++bi;
        SnapshotMetric d = a;
        if (bi < before.metrics.size() && before.metrics[bi].name == a.name) {
            const SnapshotMetric &b = before.metrics[bi];
            // Counters and histogram totals are monotonic, so the
            // subtractions cannot underflow; gauges keep the
            // after-value (a level, not a total).
            d.value -= b.value;
            d.count -= b.count;
            d.sum -= b.sum;
            for (std::size_t i = 0;
                 i < d.buckets.size() && i < b.buckets.size(); ++i)
                d.buckets[i] -= b.buckets[i];
            while (!d.buckets.empty() && d.buckets.back() == 0)
                d.buckets.pop_back();
        }
        out.metrics.push_back(std::move(d));
    }
    return out;
}

std::uint64_t
Snapshot::value(const std::string &name) const
{
    for (const SnapshotMetric &m : metrics) {
        if (m.name == name)
            return m.kind == Kind::Histogram ? m.count : m.value;
    }
    return 0;
}

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

namespace
{

struct SpanEvent {
    const char *label;
    std::uint64_t startNs;
    std::uint64_t durNs;
};

struct ThreadBuffer {
    /// 2^18 spans (~6 MB) per thread; beyond that spans are dropped
    /// and counted — a profiler must never grow unbounded inside
    /// the process it profiles.
    static constexpr std::uint32_t kCapacity = 1u << 18;

    explicit ThreadBuffer(std::uint64_t tid_in)
        : tid(tid_in), entries(kCapacity)
    {}

    const std::uint64_t tid;
    std::vector<SpanEvent> entries;
    /// Publication index: owner stores with release after writing
    /// entries[count]; readers load with acquire.
    std::atomic<std::uint32_t> count{0};
    /// Track label; read/written only under TracerState::mu.
    std::string name;
};

struct TracerState {
    Mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers SIGCOMP_GUARDED_BY(mu);
    std::uint64_t nextTid SIGCOMP_GUARDED_BY(mu) = 1;
    /// Trace time origin (first startTracing), 0 = unset.
    std::atomic<std::uint64_t> originNs{0};
    std::atomic<std::uint64_t> dropped{0};
};

TracerState &
tracer()
{
    // Leaked: see file comment.
    static TracerState *state = new TracerState;
    return *state;
}

struct TlsSlot {
    std::shared_ptr<ThreadBuffer> buf;
    /// Name set before the thread's first span.
    std::string pendingName;
};

TlsSlot &
tls()
{
    thread_local TlsSlot slot;
    return slot;
}

ThreadBuffer *
tlsBuffer()
{
    TlsSlot &slot = tls();
    if (!slot.buf) {
        TracerState &t = tracer();
        MutexLock lock(t.mu);
        auto buf = std::make_shared<ThreadBuffer>(t.nextTid++);
        buf->name = slot.pendingName;
        t.buffers.push_back(buf);
        slot.buf = std::move(buf);
    }
    return slot.buf.get();
}

void
appendEscaped(std::FILE *f, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            std::fputc('\\', f);
        std::fputc(c, f);
    }
}

} // namespace

namespace detail
{

std::uint64_t
spanClockNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
emitSpan(const char *label, std::uint64_t start_ns)
{
    const std::uint64_t end_ns = spanClockNanos();
    ThreadBuffer *buf = tlsBuffer();
    const std::uint32_t i = buf->count.load(std::memory_order_relaxed);
    if (i >= ThreadBuffer::kCapacity) {
        tracer().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf->entries[i] = SpanEvent{label, start_ns, end_ns - start_ns};
    buf->count.store(i + 1, std::memory_order_release);
}

} // namespace detail

void
startTracing()
{
    TracerState &t = tracer();
    std::uint64_t expected = 0;
    t.originNs.compare_exchange_strong(expected, detail::spanClockNanos(),
                                       std::memory_order_relaxed);
    detail::g_tracing.store(true, std::memory_order_relaxed);
}

void
stopTracing()
{
    detail::g_tracing.store(false, std::memory_order_relaxed);
}

bool
tracingActive()
{
    return detail::g_tracing.load(std::memory_order_relaxed);
}

void
setThreadName(const std::string &name)
{
    TlsSlot &slot = tls();
    if (slot.buf) {
        MutexLock lock(tracer().mu);
        slot.buf->name = name;
    } else {
        slot.pendingName = name;
    }
}

std::uint64_t
droppedSpans()
{
    return tracer().dropped.load(std::memory_order_relaxed);
}

void
writeTrace(std::FILE *f)
{
    TracerState &t = tracer();
    const std::uint64_t origin = t.originNs.load(std::memory_order_relaxed);
    std::fputs("{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n", f);
    bool first = true;
    MutexLock lock(t.mu);
    for (const auto &buf : t.buffers) {
        const unsigned long long tid = buf->tid;
        if (!buf->name.empty()) {
            std::fprintf(f,
                         "%s{\"ph\": \"M\", \"pid\": 1, \"tid\": %llu, "
                         "\"name\": \"thread_name\", \"args\": {\"name\": \"",
                         first ? "" : ",\n", tid);
            appendEscaped(f, buf->name);
            std::fputs("\"}}", f);
            first = false;
        }
        const std::uint32_t n = buf->count.load(std::memory_order_acquire);
        for (std::uint32_t i = 0; i < n; ++i) {
            const SpanEvent &e = buf->entries[i];
            std::fprintf(
                f,
                "%s{\"ph\": \"X\", \"pid\": 1, \"tid\": %llu, "
                "\"ts\": %.3f, \"dur\": %.3f, \"cat\": \"sigcomp\", "
                "\"name\": \"%s\"}",
                first ? "" : ",\n", tid,
                static_cast<double>(e.startNs - origin) / 1000.0,
                static_cast<double>(e.durNs) / 1000.0, e.label);
            first = false;
        }
    }
    std::fputs("\n]}\n", f);
}

bool
writeTrace(const std::string &path, std::string *why)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (why != nullptr)
            *why = path + ": " + std::strerror(errno);
        return false;
    }
    writeTrace(f);
    const bool ok = std::ferror(f) == 0;
    if (std::fclose(f) != 0 || !ok) {
        if (why != nullptr)
            *why = path + ": write failed";
        return false;
    }
    return true;
}

namespace
{

/**
 * Static-init bootstrap: SIGCOMP_TELEMETRY=off|0|false disables
 * gauge/histogram recording; SIGCOMP_TRACE=out.json opens a trace
 * window for the whole process lifetime and flushes at exit —
 * any binary linking the library becomes traceable with no code
 * change.
 */
struct EnvBootstrap {
    EnvBootstrap()
    {
        const char *mode = std::getenv("SIGCOMP_TELEMETRY");
        if (mode != nullptr) {
            const std::string v(mode);
            if (v == "off" || v == "0" || v == "false")
                setEnabled(false);
        }
        const char *path = std::getenv("SIGCOMP_TRACE");
        if (path != nullptr && *path != '\0') {
            startTracing();
            std::atexit([] {
                const char *p = std::getenv("SIGCOMP_TRACE");
                if (p == nullptr || *p == '\0')
                    return;
                std::string why;
                if (!writeTrace(std::string(p), &why))
                    SC_WARN("SIGCOMP_TRACE flush failed: ", why);
            });
        }
    }
};

const EnvBootstrap bootstrap;

} // namespace

} // namespace telemetry
} // namespace sigcomp
