#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sigcomp::simd
{

namespace
{

SimdLevel
probe()
{
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports covers the OS-support (XGETBV) side of
    // AVX2 as well as the CPUID feature bit.
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
    if (__builtin_cpu_supports("ssse3"))
        return SimdLevel::Ssse3;
    return SimdLevel::Scalar;
#elif defined(__ARM_NEON) || defined(__aarch64__)
    return SimdLevel::Neon;
#else
    return SimdLevel::Scalar;
#endif
}

bool
forceScalarEnv()
{
    const char *v = std::getenv("SIGCOMP_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/** Detected level, probed exactly once. */
SimdLevel
detected()
{
    static const SimdLevel level = probe();
    return level;
}

/** Sentinel: SIGCOMP_FORCE_SCALAR not yet resolved. */
constexpr SimdLevel kUnresolved = static_cast<SimdLevel>(0xFF);

std::atomic<SimdLevel> active{kUnresolved};

} // namespace

SimdLevel
detectedSimdLevel()
{
    return detected();
}

SimdLevel
activeSimdLevel()
{
    SimdLevel level = active.load(std::memory_order_relaxed);
    if (level == kUnresolved) {
        // First kernel call resolves the SIGCOMP_FORCE_SCALAR
        // override. compare_exchange, not a plain store: a
        // setSimdLevel() pin racing this lazy resolution must stick —
        // with a blind store, a concurrent first dispatch could
        // silently undo the pin it had already observed as pending
        // (found by the PR 6 concurrency audit; hammered by
        // test_tsan_stress.cpp).
        SimdLevel want =
            forceScalarEnv() ? SimdLevel::Scalar : detected();
        if (active.compare_exchange_strong(level, want,
                                           std::memory_order_relaxed))
            return want;
        return level; // a concurrent pin (or resolver) won
    }
    return level;
}

void
setSimdLevel(SimdLevel level)
{
    // Clamp to what this CPU can run; an unsupported or foreign-
    // architecture level (NEON on x86, AVX2 on a non-AVX2 part)
    // degrades to Scalar.
    SimdLevel want = SimdLevel::Scalar;
    for (const SimdLevel l : availableSimdLevels())
        if (l == level)
            want = level;
    active.store(want, std::memory_order_relaxed);
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar: return "scalar";
      case SimdLevel::Neon: return "neon";
      case SimdLevel::Ssse3: return "ssse3";
      case SimdLevel::Avx2: return "avx2";
    }
    return "?";
}

std::vector<SimdLevel>
availableSimdLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    const SimdLevel best = detected();
#if defined(__x86_64__) || defined(__i386__)
    if (best == SimdLevel::Ssse3 || best == SimdLevel::Avx2)
        levels.push_back(SimdLevel::Ssse3);
    if (best == SimdLevel::Avx2)
        levels.push_back(SimdLevel::Avx2);
#else
    if (best == SimdLevel::Neon)
        levels.push_back(SimdLevel::Neon);
#endif
    return levels;
}

} // namespace sigcomp::simd
