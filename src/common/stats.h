/**
 * @file
 * Light-weight statistics primitives: scalar counters, ratios,
 * frequency distributions, and running averages.
 */

#ifndef SIGCOMP_COMMON_STATS_H_
#define SIGCOMP_COMMON_STATS_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace sigcomp
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(Count n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    Count value() const { return value_; }

  private:
    Count value_ = 0;
};

/**
 * Running scalar average over samples.
 */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    Count samples() const { return n_; }

    void
    reset()
    {
        sum_ = 0.0;
        n_ = 0;
    }

  private:
    double sum_ = 0.0;
    Count n_ = 0;
};

/**
 * Frequency distribution over a small key domain (e.g. the eight
 * significance patterns or the 64 MIPS function codes).
 */
template <typename Key>
class Distribution
{
  public:
    void
    record(const Key &k, Count n = 1)
    {
        counts_[k] += n;
        total_ += n;
    }

    Count total() const { return total_; }

    Count
    count(const Key &k) const
    {
        auto it = counts_.find(k);
        return it == counts_.end() ? 0 : it->second;
    }

    /** Fraction of all samples carrying key @p k, in [0, 1]. */
    double
    fraction(const Key &k) const
    {
        return total_ ? static_cast<double>(count(k)) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    /** Keys sorted by descending frequency. */
    std::vector<std::pair<Key, Count>>
    ranked() const
    {
        std::vector<std::pair<Key, Count>> v(counts_.begin(),
                                             counts_.end());
        std::stable_sort(v.begin(), v.end(),
                         [](const auto &a, const auto &b) {
                             return a.second > b.second;
                         });
        return v;
    }

    const std::map<Key, Count> &raw() const { return counts_; }

    void
    reset()
    {
        counts_.clear();
        total_ = 0;
    }

  private:
    std::map<Key, Count> counts_;
    Count total_ = 0;
};

/**
 * Percentage saving of @p compressed activity versus @p baseline.
 *
 * @return 100 * (1 - compressed/baseline), or 0 when baseline is 0.
 */
inline double
percentSaving(Count compressed, Count baseline)
{
    if (baseline == 0)
        return 0.0;
    return 100.0 * (1.0 - static_cast<double>(compressed) /
                              static_cast<double>(baseline));
}

} // namespace sigcomp

#endif // SIGCOMP_COMMON_STATS_H_
