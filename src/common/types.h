/**
 * @file
 * Fundamental fixed-width type aliases used across the simulator.
 */

#ifndef SIGCOMP_COMMON_TYPES_H_
#define SIGCOMP_COMMON_TYPES_H_

#include <cstdint>
#include <cstddef>

namespace sigcomp
{

/** 32-bit machine word (register width of the simulated ISA). */
using Word = std::uint32_t;

/** Signed view of a machine word. */
using SWord = std::int32_t;

/** 64-bit quantity (HI:LO pairs, counters). */
using DWord = std::uint64_t;

/** Byte within a word. */
using Byte = std::uint8_t;

/** Halfword within a word. */
using Half = std::uint16_t;

/** Virtual/physical address in the simulated machine. */
using Addr = std::uint32_t;

/** Simulation cycle count. */
using Cycle = std::uint64_t;

/** Large event/bit counters for activity statistics. */
using Count = std::uint64_t;

/** Number of bytes in a simulated machine word. */
constexpr unsigned wordBytes = 4;

/** Number of bits in a simulated machine word. */
constexpr unsigned wordBits = 32;

} // namespace sigcomp

#endif // SIGCOMP_COMMON_TYPES_H_
