#include "common/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sigcomp::net
{

namespace
{

/** Map errno to the shared Env fault taxonomy. */
EnvFault
classifyErrno(int err)
{
    switch (err) {
    case EINTR:
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
        return EnvFault::Transient;
    case ECONNREFUSED:
    case ENOENT:
        return EnvFault::NotFound;
    case EACCES:
    case EPERM:
        return EnvFault::ReadOnly;
    default:
        return EnvFault::Other;
    }
}

EnvStatus
errnoStatus(const char *op, int err)
{
    return EnvStatus::error(classifyErrno(err),
                            std::string(op) + ": " +
                                std::strerror(err));
}

// ------------------------------------------------------------------
// POSIX TCP transport. The only raw-socket code in the repo: the
// serving layer sees Conn/Listener only (enforced by sigcomp_lint's
// env-seam check over src/server/).
// ------------------------------------------------------------------

class PosixConn final : public Conn
{
  public:
    explicit PosixConn(int fd) : fd_(fd) {}

    ~PosixConn() override { closeConn(); }

    EnvStatus
    read(void *buf, std::size_t n, std::size_t *got) override
    {
        *got = 0;
        for (;;) {
            const ssize_t r =
                ::recv(fd_.load(std::memory_order_relaxed), buf, n, 0);
            if (r >= 0) {
                *got = static_cast<std::size_t>(r);
                return EnvStatus::good();
            }
            if (errno == EINTR)
                continue;
            return errnoStatus("recv", errno);
        }
    }

    EnvStatus
    writeAll(const void *buf, std::size_t n) override
    {
        const char *p = static_cast<const char *>(buf);
        while (n > 0) {
            // MSG_NOSIGNAL: a peer that hung up must surface as
            // EPIPE, not kill the daemon with SIGPIPE.
            const ssize_t w = ::send(fd_.load(std::memory_order_relaxed),
                                     p, n, MSG_NOSIGNAL);
            if (w > 0) {
                p += w;
                n -= static_cast<std::size_t>(w);
                continue;
            }
            if (w < 0 && errno == EINTR)
                continue;
            return errnoStatus("send", errno);
        }
        return EnvStatus::good();
    }

    bool
    peerClosed() override
    {
        char probe;
        const ssize_t r = ::recv(fd_.load(std::memory_order_relaxed),
                                 &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (r == 0)
            return true; // orderly EOF, nothing pending
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR)) {
            return false; // alive, just quiet
        }
        return r < 0; // hard error: treat as gone
    }

    void
    closeConn() override
    {
        // Atomic swap: the disconnect watcher may probe peerClosed()
        // concurrently; it sees either the live fd or -1 (EBADF →
        // "gone"), never a recycled descriptor number.
        const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
        if (fd >= 0)
            ::close(fd);
    }

  private:
    std::atomic<int> fd_;
};

class PosixListener final : public Listener
{
  public:
    PosixListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

    ~PosixListener() override
    {
        stopListening();
        if (fd_ >= 0)
            ::close(fd_);
    }

    std::unique_ptr<Conn>
    acceptConn(EnvStatus *status) override
    {
        for (;;) {
            const int client = ::accept(fd_, nullptr, nullptr);
            if (client >= 0) {
                if (stopped_.load(std::memory_order_acquire)) {
                    ::close(client);
                    if (status != nullptr)
                        *status = EnvStatus::good();
                    return nullptr;
                }
                return std::make_unique<PosixConn>(client);
            }
            if (errno == EINTR)
                continue;
            if (status != nullptr) {
                *status = stopped_.load(std::memory_order_acquire)
                              ? EnvStatus::good()
                              : errnoStatus("accept", errno);
            }
            return nullptr;
        }
    }

    void
    stopListening() override
    {
        if (!stopped_.exchange(true, std::memory_order_acq_rel)) {
            // shutdown() unblocks a concurrent accept() with EINVAL
            // while leaving the fd itself for the destructor, so a
            // racing acceptConn never touches a recycled fd number.
            ::shutdown(fd_, SHUT_RDWR);
        }
    }

    std::uint16_t port() const override { return port_; }

  private:
    int fd_;
    std::uint16_t port_;
    std::atomic<bool> stopped_{false};
};

// ------------------------------------------------------------------
// In-process memory transport.
// ------------------------------------------------------------------

/** One direction of the pipe: a byte queue + writer-closed flag. */
struct MemoryStream
{
    Mutex mu;
    std::condition_variable cv;
    std::string buf SIGCOMP_GUARDED_BY(mu);
    bool writerClosed SIGCOMP_GUARDED_BY(mu) = false;
    bool readerClosed SIGCOMP_GUARDED_BY(mu) = false;
};

class MemoryConn final : public Conn
{
  public:
    MemoryConn(std::shared_ptr<MemoryStream> in,
               std::shared_ptr<MemoryStream> out)
        : in_(std::move(in)), out_(std::move(out))
    {}

    ~MemoryConn() override { closeConn(); }

    EnvStatus
    read(void *buf, std::size_t n, std::size_t *got) override
    {
        *got = 0;
        UniqueLock lock(in_->mu);
        while (in_->buf.empty() && !in_->writerClosed &&
               !in_->readerClosed) {
            in_->cv.wait(lock.native());
        }
        if (in_->buf.empty())
            return EnvStatus::good(); // EOF (or own close): 0 bytes
        const std::size_t take = std::min(n, in_->buf.size());
        std::memcpy(buf, in_->buf.data(), take);
        in_->buf.erase(0, take);
        *got = take;
        return EnvStatus::good();
    }

    EnvStatus
    writeAll(const void *buf, std::size_t n) override
    {
        MutexLock lock(out_->mu);
        if (out_->writerClosed || out_->readerClosed) {
            return EnvStatus::error(EnvFault::Other,
                                    "memory conn: peer closed");
        }
        out_->buf.append(static_cast<const char *>(buf), n);
        out_->cv.notify_all();
        return EnvStatus::good();
    }

    bool
    peerClosed() override
    {
        // Mirror the TCP probe: the peer is "gone" once it can no
        // longer send us anything AND everything it sent was read.
        MutexLock lock(in_->mu);
        return in_->writerClosed && in_->buf.empty();
    }

    void
    closeConn() override
    {
        {
            MutexLock lock(out_->mu);
            out_->writerClosed = true;
            out_->cv.notify_all();
        }
        {
            MutexLock lock(in_->mu);
            in_->readerClosed = true;
            in_->cv.notify_all();
        }
    }

  private:
    std::shared_ptr<MemoryStream> in_;
    std::shared_ptr<MemoryStream> out_;
};

} // namespace

std::unique_ptr<Listener>
listenTcp(const std::string &addr, std::uint16_t port, std::string *why)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (why != nullptr)
            *why = std::string("socket: ") + std::strerror(errno);
        return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
        if (why != nullptr)
            *why = "bad IPv4 address '" + addr + "'";
        ::close(fd);
        return nullptr;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) != 0 ||
        ::listen(fd, 64) != 0) {
        if (why != nullptr) {
            *why = std::string("bind/listen ") + addr + ":" +
                   std::to_string(port) + ": " + std::strerror(errno);
        }
        ::close(fd);
        return nullptr;
    }
    socklen_t len = sizeof(sa);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&sa), &len) != 0) {
        if (why != nullptr)
            *why = std::string("getsockname: ") + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<PosixListener>(fd, ntohs(sa.sin_port));
}

std::unique_ptr<Conn>
connectTcp(const std::string &addr, std::uint16_t port, std::string *why)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (why != nullptr)
            *why = std::string("socket: ") + std::strerror(errno);
        return nullptr;
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
        if (why != nullptr)
            *why = "bad IPv4 address '" + addr + "'";
        ::close(fd);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        if (why != nullptr) {
            *why = std::string("connect ") + addr + ":" +
                   std::to_string(port) + ": " + std::strerror(errno);
        }
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<PosixConn>(fd);
}

std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>>
memoryConnPair()
{
    auto a = std::make_shared<MemoryStream>();
    auto b = std::make_shared<MemoryStream>();
    return {std::make_unique<MemoryConn>(a, b),
            std::make_unique<MemoryConn>(b, a)};
}

} // namespace sigcomp::net
