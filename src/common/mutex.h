/**
 * @file
 * Annotated mutex wrappers: std::mutex with the Clang Thread Safety
 * Analysis capability attributes attached.
 *
 * libstdc++'s std::mutex and std::lock_guard carry no TSA
 * attributes, so code locking through them is invisible to
 * `-Wthread-safety` — every SIGCOMP_GUARDED_BY access would warn even
 * when correctly locked. These thin wrappers (zero overhead: the
 * lock/unlock calls inline to the std::mutex ones) make the
 * acquire/release visible to the analysis, the same approach taken
 * by Abseil's annotated Mutex. All mutex-protected state in this
 * tree uses sigcomp::Mutex; tools/sigcomp_lint rejects raw
 * std::mutex/std::shared_mutex members.
 */

#ifndef SIGCOMP_COMMON_MUTEX_H_
#define SIGCOMP_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace sigcomp
{

/** std::mutex carrying the TSA "mutex" capability. */
class SIGCOMP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() SIGCOMP_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() SIGCOMP_RELEASE()
    {
        mu_.unlock();
    }

    bool
    tryLock() SIGCOMP_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    friend class UniqueLock;
    std::mutex mu_;
};

/** RAII lock over a Mutex (the annotated std::lock_guard). */
class SIGCOMP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SIGCOMP_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() SIGCOMP_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * RAII lock exposing the underlying std::unique_lock for
 * std::condition_variable waits (the annotated std::unique_lock).
 *
 * The TSA idiom for waiting: hold a UniqueLock and call
 * `cv.wait(lock.native())` inside an explicit `while (!predicate)`
 * loop. The wait releases and reacquires the real mutex, but the
 * analysis treats the capability as continuously held — which is
 * exactly the caller-visible contract, since the predicate and all
 * guarded accesses around the wait do run under the lock.
 */
class SIGCOMP_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) SIGCOMP_ACQUIRE(mu) : lock_(mu.mu_) {}

    ~UniqueLock() SIGCOMP_RELEASE() {}

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** The held std lock, for std::condition_variable::wait. */
    std::unique_lock<std::mutex> &
    native()
    {
        return lock_;
    }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace sigcomp

#endif // SIGCOMP_COMMON_MUTEX_H_
