#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sigcomp
{

namespace
{

/** -1 = not yet resolved from SIGCOMP_LOG. */
std::atomic<int> g_log_level{-1};

int
resolveLevel()
{
    const char *env = std::getenv("SIGCOMP_LOG");
    if (env == nullptr || *env == '\0')
        return static_cast<int>(LogLevel::Info);
    const std::string v(env);
    if (v == "quiet")
        return static_cast<int>(LogLevel::Quiet);
    if (v == "warn")
        return static_cast<int>(LogLevel::Warn);
    if (v == "info")
        return static_cast<int>(LogLevel::Info);
    // An unrecognised value must not silently silence diagnostics:
    // fall back to Info and say so once (prints because the level is
    // already resolved to Info at this point).
    std::fprintf(stderr,
                 "warn: SIGCOMP_LOG='%s' not one of quiet|warn|info; "
                 "using info\n",
                 env);
    return static_cast<int>(LogLevel::Info);
}

} // namespace

LogLevel
logLevel()
{
    int level = g_log_level.load(std::memory_order_relaxed);
    if (level < 0) {
        level = resolveLevel();
        // A concurrent first call resolves the same env value; either
        // store wins with the same result.
        g_log_level.store(level, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace sigcomp
