#include "common/table.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace sigcomp
{

std::string
formatFixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SC_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    SC_ASSERT(row.size() == headers_.size(),
              "row arity ", row.size(), " != ", headers_.size());
    rows_.push_back(std::move(row));
}

TextTable &
TextTable::beginRow()
{
    SC_ASSERT(!rowOpen_, "previous row not finished");
    rowOpen_ = true;
    pending_.clear();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    SC_ASSERT(rowOpen_, "cell() outside beginRow()/endRow()");
    pending_.push_back(text);
    return *this;
}

TextTable &
TextTable::cell(double v, int decimals)
{
    return cell(formatFixed(v, decimals));
}

TextTable &
TextTable::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

void
TextTable::endRow()
{
    SC_ASSERT(rowOpen_, "endRow() without beginRow()");
    rowOpen_ = false;
    addRow(pending_);
    pending_.clear();
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os << row[c];
            os << std::string(width[c] - row[c].size(), ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

std::string
TextTable::toCsv() const
{
    auto emit = [](std::ostringstream &os,
                   const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
            if (!quote) {
                os << row[c];
            } else {
                os << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            }
        }
        os << '\n';
    };

    std::ostringstream os;
    emit(os, headers_);
    for (const auto &row : rows_)
        emit(os, row);
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << toString();
}

} // namespace sigcomp
