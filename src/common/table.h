/**
 * @file
 * ASCII table / CSV writer used by the benchmark harnesses to print
 * paper-style tables.
 */

#ifndef SIGCOMP_COMMON_TABLE_H_
#define SIGCOMP_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace sigcomp
{

/**
 * A rectangular table of strings with a header row, rendered either
 * as aligned ASCII art or as CSV.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a full row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Begin an incremental row. */
    TextTable &beginRow();

    /** Append one cell to the row under construction. */
    TextTable &cell(const std::string &text);

    /** Append a numeric cell with fixed decimals. */
    TextTable &cell(double v, int decimals = 2);

    /** Append an integer cell. */
    TextTable &cell(std::uint64_t v);

    /** Finish the row under construction. */
    void endRow();

    /** Render with aligned columns and a separator under the header. */
    std::string toString() const;

    /** Render as CSV. */
    std::string toCsv() const;

    /** Convenience: print toString() to @p os. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool rowOpen_ = false;
};

/** Format a double with fixed decimals (helper shared with benches). */
std::string formatFixed(double v, int decimals);

} // namespace sigcomp

#endif // SIGCOMP_COMMON_TABLE_H_
